package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/koko"
	"repro/koko/remote"
)

// RemoteConfig wires a coordinator to its worker nodes.
type RemoteConfig struct {
	// Workers are the worker base URLs (e.g. http://10.0.0.2:7333).
	Workers []string
	// Replicas is how many workers each shard is routed to (clamped to
	// [1, len(Workers)]). With the demo/round-robin placement every worker
	// holds every corpus, so any replica can serve any shard.
	Replicas int
	// AttemptTimeout / MaxAttempts / HedgeAfter / BreakerThreshold /
	// BreakerCooloff tune the pool (see remote.PoolConfig; zero = default).
	AttemptTimeout   time.Duration
	MaxAttempts      int
	HedgeAfter       time.Duration
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// HealthInterval > 0 starts a background health loop pinging every
	// worker that often.
	HealthInterval time.Duration
	// DiscoverTimeout bounds how long ConnectWorkers retries unreachable
	// workers before failing (default 10s) — workers and coordinator
	// typically boot together.
	DiscoverTimeout time.Duration
	// Fault, when non-nil, injects deterministic faults into the transport
	// (tests and chaos drills).
	Fault *remote.FaultPolicy
}

// ConnectWorkers turns this service into a coordinator: it discovers the
// corpora every worker serves, builds a replicated round-robin shard
// placement per corpus, and registers a remote routing engine for each —
// from then on those corpora answer queries, streams, and jobs here, with
// every shard evaluated on the workers. Returns the corpus names
// registered. ctx bounds discovery and owns the background health loop.
func (s *Service) ConnectWorkers(ctx context.Context, rc RemoteConfig) ([]string, error) {
	if len(rc.Workers) == 0 {
		return nil, fmt.Errorf("remote: no workers given")
	}
	workers := make([]string, 0, len(rc.Workers))
	for _, w := range rc.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		workers = append(workers, w)
	}
	pool := remote.NewPool(remote.PoolConfig{
		AttemptTimeout:   rc.AttemptTimeout,
		MaxAttempts:      rc.MaxAttempts,
		HedgeAfter:       rc.HedgeAfter,
		BreakerThreshold: rc.BreakerThreshold,
		BreakerCooloff:   rc.BreakerCooloff,
		Fault:            rc.Fault,
	})

	discoverTimeout := rc.DiscoverTimeout
	if discoverTimeout <= 0 {
		discoverTimeout = 10 * time.Second
	}
	byWorker, err := discoverAll(ctx, workers, discoverTimeout)
	if err != nil {
		return nil, err
	}

	// Union of corpus names, sorted for deterministic registration order.
	nameSet := map[string]bool{}
	for _, corpora := range byWorker {
		for name := range corpora {
			nameSet[name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	var registered []string
	for _, name := range names {
		// Nodes that hold this corpus, in the caller's worker order.
		var nodes []string
		var infos []CorpusInfo
		for _, w := range workers {
			if info, ok := byWorker[w][name]; ok {
				nodes = append(nodes, w)
				infos = append(infos, info)
			}
		}
		ref := infos[0]
		gen := ref.Generation
		for i, info := range infos[1:] {
			if info.Shards != ref.Shards || info.Documents != ref.Documents || info.Sentences != ref.Sentences {
				return registered, fmt.Errorf("remote: corpus %q disagrees across workers: %s has shards=%d docs=%d sents=%d, %s has shards=%d docs=%d sents=%d",
					name, nodes[0], ref.Shards, ref.Documents, ref.Sentences,
					nodes[i+1], info.Shards, info.Documents, info.Sentences)
			}
			if info.Generation != ref.Generation {
				// Same data, different local generation counters (workers
				// booted differently): serve unpinned rather than 409 half
				// the replicas.
				gen = 0
			}
		}
		meta := remote.Meta{
			Generation: gen,
			Documents:  ref.Documents,
			Sentences:  ref.Sentences,
		}
		if stats, err := fetchShardStats(ctx, nodes[0], name); err == nil {
			meta.Shards = stats
		} else {
			log.Printf("server: corpus %q: shard stats from %s: %v (stats will report empty)", name, nodes[0], err)
		}
		eng := remote.NewEngine(pool, remote.EngineConfig{
			Corpus:    name,
			Placement: koko.BuildPlacement(ref.Shards, nodes, rc.Replicas),
			Meta:      meta,
			Parallel:  s.shardPar,
		})
		s.reg.RegisterRemote(name, "remote:"+strings.Join(nodes, ","), eng)
		registered = append(registered, name)
	}
	s.rpool.Store(pool)
	if rc.HealthInterval > 0 {
		go pool.HealthLoop(ctx, rc.HealthInterval)
	}
	return registered, nil
}

// discoverAll lists every worker's corpora, retrying unreachable workers
// until the timeout (workers and coordinator usually boot together).
func discoverAll(ctx context.Context, workers []string, timeout time.Duration) (map[string]map[string]CorpusInfo, error) {
	deadline := time.Now().Add(timeout)
	byWorker := map[string]map[string]CorpusInfo{}
	for {
		var lastErr error
		for _, w := range workers {
			if _, done := byWorker[w]; done {
				continue
			}
			var resp struct {
				Corpora []CorpusInfo `json:"corpora"`
			}
			if err := fetchJSON(ctx, w+"/v1/corpora", &resp); err != nil {
				lastErr = fmt.Errorf("worker %s: %w", w, err)
				continue
			}
			m := map[string]CorpusInfo{}
			for _, info := range resp.Corpora {
				if info.Remote {
					// Never route through another coordinator's routing
					// view: chains hide where the data actually is.
					continue
				}
				m[info.Name] = info
			}
			byWorker[w] = m
		}
		if len(byWorker) == len(workers) {
			return byWorker, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("remote: discovery: %w", lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// fetchShardStats pulls one corpus's per-shard statistics from a worker.
func fetchShardStats(ctx context.Context, worker, name string) ([]koko.ShardStat, error) {
	var resp statsResponse
	if err := fetchJSON(ctx, worker+"/v1/corpora/"+name+"/stats", &resp); err != nil {
		return nil, err
	}
	out := make([]koko.ShardStat, 0, len(resp.Shards))
	for _, ss := range resp.Shards {
		out = append(out, koko.ShardStat{
			Shard:     ss.Shard,
			Documents: ss.Documents,
			Sentences: ss.Sentences,
			Tokens:    ss.Tokens,
			Delta:     ss.Delta,
			Index: koko.IndexStats{
				Words: ss.Index.Words, Entities: ss.Index.Entities,
				PLNodes: ss.Index.PLNodes, POSNodes: ss.Index.POSNodes,
				PLCompression: ss.Index.PLCompression, POSCompression: ss.Index.POSCompression,
			},
		})
	}
	return out, nil
}

// fetchJSON fetches a URL with a bounded deadline and decodes the body.
func fetchJSON(ctx context.Context, url string, v any) error {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
