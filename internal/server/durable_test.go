package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/koko/wal"
	"repro/koko"
)

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// durableService builds a service whose corpora persist under dir.
func durableService(t *testing.T, dir string) *Service {
	t.Helper()
	svc := NewService(Config{
		MaxConcurrent: 4,
		CacheSize:     -1,
		DataDir:       dir,
		WALSync:       wal.SyncAlways,
	})
	if err := RegisterDemoCorpora(svc.Registry(), 1); err != nil {
		t.Fatal(err)
	}
	return svc
}

func queryTuples(t *testing.T, svc *Service, corpus string) []TupleResult {
	t.Helper()
	resp, err := svc.Query(context.Background(), QueryRequest{Corpus: corpus, Query: DemoQueries[corpus], NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Tuples
}

func sameTuples(t *testing.T, label string, got, want []TupleResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if a.SentenceID != b.SentenceID || a.Document != b.Document || a.Values[0] != b.Values[0] {
			t.Fatalf("%s: tuple %d differs: %+v vs %+v", label, i, a, b)
		}
	}
}

// TestServiceDurableRestart: a service with a data dir survives being torn
// down and rebuilt — ingested documents come back via WAL replay, a deleted
// document stays deleted, and re-registering the demo seed does not reset
// the recovered state.
func TestServiceDurableRestart(t *testing.T) {
	dir := t.TempDir()
	svc := durableService(t, dir)

	if !koko.HasDurableState(filepath.Join(dir, "demo-cafes")) {
		t.Fatal("registration did not seed the durable directory")
	}
	info, err := svc.Registry().Info("demo-cafes")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Durable {
		t.Fatalf("corpus not marked durable: %+v", info)
	}

	if _, _, _, err := svc.Ingest("demo-cafes", "ladro.txt", "Cafe Ladro opened a new roastery downtown."); err != nil {
		t.Fatal(err)
	}
	// Re-ingesting the same name is an update, not a second document.
	info, _, updated, err := svc.Ingest("demo-cafes", "ladro.txt", "Cafe Ladro poured a perfect cortado.")
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("re-ingest did not report an update")
	}
	if info.Documents != 3 {
		t.Fatalf("documents after upsert = %d, want 3", info.Documents)
	}
	if _, n, err := svc.DeleteDocument("demo-cafes", "portland.txt"); err != nil || n != 1 {
		t.Fatalf("delete portland.txt: n=%d err=%v", n, err)
	}
	if _, _, err := svc.DeleteDocument("demo-cafes", "nope.txt"); !errors.Is(err, koko.ErrNoDocument) {
		t.Fatalf("missing doc delete: %v", err)
	}
	want := queryTuples(t, svc, "demo-cafes")
	m := svc.Metrics()
	if m.WALAppends == 0 || m.WALBytes == 0 || m.DocumentDeletes != 1 || m.DocumentUpdates != 1 {
		t.Fatalf("durability metrics %+v", m)
	}
	if m.TombstonesLive == 0 {
		t.Fatalf("no live tombstones in metrics: %+v", m)
	}
	svc.Close()

	// "Restart": fresh service, same data dir, same registrations.
	svc2 := durableService(t, dir)
	defer svc2.Close()
	sameTuples(t, "after restart", queryTuples(t, svc2, "demo-cafes"), want)
	info, err = svc2.Registry().Info("demo-cafes")
	if err != nil {
		t.Fatal(err)
	}
	if info.Documents != 2 { // seattle + ladro; portland deleted
		t.Fatalf("documents after restart = %d, want 2", info.Documents)
	}
	m = svc2.Metrics()
	if m.WALReplayedDocs == 0 {
		t.Fatalf("restart replayed no documents: %+v", m)
	}

	// A durable corpus cannot be reloaded from a source file.
	if _, err := svc2.Reload("demo-cafes"); !errors.Is(err, ErrNotReloadable) {
		t.Fatalf("reload of durable corpus: %v", err)
	}

	// Compaction folds the WAL away; state still survives a restart.
	if _, _, err := svc2.Compact("demo-cafes"); err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "after compact", queryTuples(t, svc2, "demo-cafes"), want)
	m = svc2.Metrics()
	if m.CompactionSwaps == 0 {
		t.Fatalf("no compaction swap recorded: %+v", m)
	}
	svc2.Close()

	svc3 := durableService(t, dir)
	defer svc3.Close()
	sameTuples(t, "after compact+restart", queryTuples(t, svc3, "demo-cafes"), want)
}

// TestServiceDurableCorpusDelete: DELETE of a durable corpus removes its
// on-disk state, so a restart does not resurrect it.
func TestServiceDurableCorpusDelete(t *testing.T) {
	dir := t.TempDir()
	svc := durableService(t, dir)
	if _, err := svc.DeleteCorpus("demo-food"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "demo-food")); !os.IsNotExist(err) {
		t.Fatalf("durable directory survived corpus delete: %v", err)
	}
	svc.Close()

	// Restart without registrations: only corpora with durable state on
	// disk come back.
	svc2 := NewService(Config{MaxConcurrent: 2, CacheSize: -1, DataDir: dir, WALSync: wal.SyncAlways})
	defer svc2.Close()
	recovered, err := svc2.Registry().LoadDurable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "demo-cafes" {
		t.Fatalf("recovered %v, want [demo-cafes]", recovered)
	}
	if _, _, err := svc2.Engine("demo-food"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted corpus resurrected: %v", err)
	}
	if len(queryTuples(t, svc2, "demo-cafes")) == 0 {
		t.Fatal("recovered corpus returns no tuples")
	}
}

// TestHTTPDocumentDelete drives the document-delete route over real HTTP,
// including its 404 mapping for unknown documents.
func TestHTTPDocumentDelete(t *testing.T) {
	svc := NewService(Config{MaxConcurrent: 2, CacheSize: 32})
	if err := RegisterDemoCorpora(svc.Registry(), 2); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	del := func(path string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ts.Client().Do(req)
	}

	resp, err := del("/v1/corpora/demo-cafes/documents/portland.txt")
	if err != nil {
		t.Fatal(err)
	}
	var dr DocumentDeleteResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("document delete status %d", resp.StatusCode)
	}
	mustUnmarshal(t, readBody(t, resp), &dr)
	if dr.Deleted != 1 || dr.Document != "portland.txt" || dr.Corpus.Tombstones != 1 {
		t.Fatalf("delete response %+v", dr)
	}

	// The deleted document's tuples are gone from queries.
	var q QueryResponse
	_, body := postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
	mustUnmarshal(t, body, &q)
	if hasValue(q.Tuples, "Cafe Umbria") {
		t.Fatalf("deleted document still visible: %+v", q.Tuples)
	}

	// Deleting again (or a bogus name) is a 404.
	for _, path := range []string{
		"/v1/corpora/demo-cafes/documents/portland.txt",
		"/v1/corpora/demo-cafes/documents/nope.txt",
		"/v1/corpora/nope/documents/portland.txt",
	} {
		resp, err := del(path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
