package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/koko"
)

// Streaming query mode: POST /v1/query with Accept: application/x-ndjson
// (or ?stream=1) answers as newline-delimited JSON, flushing each shard's
// tuples as its doc range completes. The shard merge is already ordered by
// document, so streaming is a flush per shard — the tuples arrive in
// exactly the order (and encoding) of the buffered response, followed by a
// summary line.

// StreamEvent is one NDJSON line of a streamed query response. Exactly one
// field is set per line:
//
//	{"tuple": {...}}   one output tuple, same encoding as the buffered mode
//	{"shard": {...}}   a shard's doc range completed (progress marker)
//	{"done": {...}}    the query finished; summary counters and timings
//	{"error": "..."}   evaluation failed mid-stream (terminal)
type StreamEvent struct {
	Tuple *TupleResult   `json:"tuple,omitempty"`
	Shard *ShardProgress `json:"shard,omitempty"`
	Done  *StreamSummary `json:"done,omitempty"`
	Error string         `json:"error,omitempty"`
}

// ShardProgress marks one shard's completion within a streamed response.
type ShardProgress struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Tuples is this shard's flush size; TotalTuples the cumulative count.
	Tuples      int `json:"tuples"`
	TotalTuples int `json:"total_tuples"`
}

// StreamSummary is the terminal line of a streamed response — the buffered
// QueryResponse minus the tuple table that already went over the wire.
type StreamSummary struct {
	Corpus        string         `json:"corpus"`
	Generation    uint64         `json:"generation"`
	Tuples        int            `json:"tuples"`
	Candidates    int            `json:"candidates"`
	Matched       int            `json:"matched"`
	Cached        bool           `json:"cached"`
	Phases        PhaseMillis    `json:"phases"`
	Plan          *koko.PlanInfo `json:"plan,omitempty"`
	ServiceMillis float64        `json:"service_ms"`
}

// wantsStream reports whether the request asked for NDJSON streaming.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// QueryStream evaluates req and delivers the response as a sequence of
// StreamEvents: per-shard tuple flushes in global document order, then a
// summary. A cache hit streams the cached tuples in one flush; a miss
// evaluates shard-at-a-time under the worker pool and (on completion)
// populates the cache, so streamed and buffered modes stay interchangeable.
// An emit error (client disconnect) or ctx cancellation stops the remaining
// shard evaluations; QueryStream does not return until they have exited.
func (s *Service) QueryStream(ctx context.Context, req QueryRequest, emit func(StreamEvent) error) error {
	t0 := time.Now()
	s.metrics.streamsTotal.Add(1)
	parsed, eng, gen, key, plan, err := s.prepare(req)
	if err != nil {
		return err
	}
	if res, ok := s.cacheLookup(key, req.NoCache); ok {
		return s.streamResult(req.Corpus, gen, res, true, t0, emit)
	}

	if err := s.Acquire(ctx); err != nil {
		s.metrics.queryCancels.Add(1)
		return err
	}
	s.metrics.enter()

	// Producer/consumer split: the fan-out evaluates shards in a background
	// goroutine and hands completed partials over a channel buffered to the
	// shard count (each shard sends exactly once, so the producer never
	// blocks on the consumer). The worker-pool slot is therefore held for
	// evaluation time only — a client draining the response at modem speed
	// cannot pin a slot and starve interactive queries or job shards.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	shards := eng.NumShards()
	type delivery struct {
		shard int
		part  koko.Partial
	}
	ch := make(chan delivery, shards)
	evalErr := make(chan error, 1)
	var evalElapsed time.Duration
	go func() {
		defer s.metrics.exit()
		defer s.Release()
		tEval := time.Now()
		err := eng.RunParsedEach(cctx, parsed, &koko.QueryOptions{
			Explain: req.Explain,
			Workers: s.workersFor(req.Workers, fanoutOf(eng)),
			Plan:    plan,
		}, func(shard int, part koko.Partial) error {
			ch <- delivery{shard: shard, part: part}
			return nil
		})
		evalElapsed = time.Since(tEval)
		close(ch)
		evalErr <- err
	}()

	parts := make([]koko.Partial, 0, shards)
	total := 0
	var emitErr error
	for d := range ch {
		if emitErr != nil {
			continue // evaluation is cancelled; drain the channel
		}
		parts = append(parts, d.part)
		for _, t := range d.part.Res.Tuples {
			tr := tupleResultOf(t, d.part.DocOffset, d.part.SentOffset)
			total++
			if emitErr = emit(StreamEvent{Tuple: &tr}); emitErr != nil {
				break
			}
		}
		if emitErr == nil {
			emitErr = emit(StreamEvent{Shard: &ShardProgress{
				Shard: d.shard, Shards: shards,
				Tuples: len(d.part.Res.Tuples), TotalTuples: total,
			}})
		}
		if emitErr != nil {
			cancel() // stop the remaining shard evaluations
		}
	}
	err = <-evalErr
	if emitErr != nil {
		// The consumer went away (disconnect, write failure) — routine
		// client behavior, not a query error.
		s.metrics.queryCancels.Add(1)
		return emitErr
	}
	if err != nil {
		if ctxDone(err) {
			s.metrics.queryCancels.Add(1)
			return err
		}
		s.metrics.queryErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}

	// Cache and account evaluation wall time, not client-drain time: the
	// stored Result's Elapsed/Phases must mean the same thing as in
	// buffered mode, whatever the first consumer's network speed.
	res := koko.MergePartials(parts)
	res.Elapsed = evalElapsed
	s.metrics.queryNanos.Add(res.Elapsed.Nanoseconds())
	s.recordPlan(res)
	s.metrics.tuplesReturned.Add(int64(total))
	s.cachePut(key, req, res)
	return emit(StreamEvent{Done: &StreamSummary{
		Corpus:        req.Corpus,
		Generation:    gen,
		Tuples:        total,
		Candidates:    res.Candidates,
		Matched:       res.Matched,
		Phases:        phasesOf(res),
		Plan:          res.Plan,
		ServiceMillis: ms(time.Since(t0)),
	}})
}

// streamResult flushes an already-evaluated (cached) result as one stream.
func (s *Service) streamResult(corpus string, gen uint64, res *koko.Result, cached bool, t0 time.Time, emit func(StreamEvent) error) error {
	s.metrics.tuplesReturned.Add(int64(len(res.Tuples)))
	for i := range res.Tuples {
		tr := tupleResultOf(res.Tuples[i], 0, 0)
		if err := emit(StreamEvent{Tuple: &tr}); err != nil {
			return err
		}
	}
	return emit(StreamEvent{Done: &StreamSummary{
		Corpus:        corpus,
		Generation:    gen,
		Tuples:        len(res.Tuples),
		Candidates:    res.Candidates,
		Matched:       res.Matched,
		Cached:        cached,
		Phases:        phasesOf(res),
		Plan:          res.Plan,
		ServiceMillis: ms(time.Since(t0)),
	}})
}

// handleQueryStream answers a query as NDJSON. Errors before the first
// byte become ordinary HTTP error responses; errors after it are appended
// as a terminal {"error": ...} line (the status line is long gone).
func (s *Service) handleQueryStream(w http.ResponseWriter, r *http.Request, req QueryRequest) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	started := false
	err := s.QueryStream(r.Context(), req, func(ev StreamEvent) error {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		// Flush on shard boundaries and at the end — the semantics the mode
		// exists for: a shard's tuples become visible when its doc range
		// completes, not when the whole query does.
		if flusher != nil && (ev.Shard != nil || ev.Done != nil) {
			flusher.Flush()
		}
		return nil
	})
	if err == nil {
		return
	}
	if !started {
		writeError(w, err)
		return
	}
	_ = enc.Encode(StreamEvent{Error: err.Error()})
	if flusher != nil {
		flusher.Flush()
	}
}
