package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/koko"
)

// Streaming query mode: POST /v1/query with Accept: application/x-ndjson
// (or ?stream=1) answers as newline-delimited JSON pulled straight off the
// engine's tuple iterator: lines go out as evaluation yields them, flushed
// on a fixed cadence rather than per shard. The shard merge is already
// ordered by document, so the tuples arrive in exactly the order (and
// encoding) of the buffered response, interleaved with per-shard progress
// markers and followed by a summary line.

// StreamEvent is one NDJSON line of a streamed query response. Exactly one
// field is set per line:
//
//	{"tuple": {...}}   one output tuple, same encoding as the buffered mode
//	{"shard": {...}}   a shard's doc range completed (progress marker)
//	{"done": {...}}    the query finished; summary counters and timings
//	{"error": "..."}   evaluation failed mid-stream (terminal)
type StreamEvent struct {
	Tuple *TupleResult   `json:"tuple,omitempty"`
	Shard *ShardProgress `json:"shard,omitempty"`
	Done  *StreamSummary `json:"done,omitempty"`
	Error string         `json:"error,omitempty"`
}

// ShardProgress marks one shard's completion within a streamed response.
type ShardProgress struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Tuples is this shard's flush size; TotalTuples the cumulative count.
	Tuples      int `json:"tuples"`
	TotalTuples int `json:"total_tuples"`
}

// StreamSummary is the terminal line of a streamed response — the buffered
// QueryResponse minus the tuple table that already went over the wire.
type StreamSummary struct {
	Corpus        string         `json:"corpus"`
	Generation    uint64         `json:"generation"`
	Tuples        int            `json:"tuples"`
	Candidates    int            `json:"candidates"`
	Matched       int            `json:"matched"`
	Cached        bool           `json:"cached"`
	Phases        PhaseMillis    `json:"phases"`
	Plan          *koko.PlanInfo `json:"plan,omitempty"`
	ServiceMillis float64        `json:"service_ms"`
}

// flushEvery is the NDJSON flush cadence in tuple lines: small enough that
// a slow query's early tuples reach the client promptly, large enough to
// amortize the flush syscall across a burst.
const flushEvery = 64

// wantsStream reports whether the request asked for NDJSON streaming.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// QueryStream evaluates req and delivers the response as a sequence of
// StreamEvents by pulling the engine's tuple iterator directly: each tuple
// is emitted as evaluation yields it, so the first line is on the wire
// before later documents and shards have evaluated, and a paused consumer
// applies backpressure all the way down to the per-document loop (memory
// stays bounded by the stream's internal batching, not the result size).
// A cache hit streams the cached tuples in one flush; a miss that completes
// populates the cache — unless the request said NoCache, in which case
// nothing is materialized at all. The worker-pool slot is held for the whole
// drain: with pull-driven evaluation there is no completed-result handoff
// point, and a slot that outlives its evaluation would unbound the pool.
// An emit error (client disconnect) or ctx cancellation stops the remaining
// evaluation; QueryStream does not return until it has exited.
func (s *Service) QueryStream(ctx context.Context, req QueryRequest, emit func(StreamEvent) error) error {
	t0 := time.Now()
	s.metrics.streamsTotal.Add(1)
	parsed, eng, gen, key, plan, err := s.prepare(req)
	if err != nil {
		return err
	}
	if res, ok := s.cacheLookup(key, req.NoCache); ok {
		return s.streamResult(req.Corpus, gen, res, true, t0, emit)
	}

	if err := s.Acquire(ctx); err != nil {
		s.metrics.queryCancels.Add(1)
		return err
	}
	defer s.Release()
	s.metrics.enter()
	defer s.metrics.exit()

	seq, err := eng.Run(ctx, parsed, &koko.QueryOptions{
		Explain: req.Explain,
		Workers: s.workersFor(req.Workers, fanoutOf(eng)),
		Plan:    plan,
	})
	if err != nil {
		s.metrics.queryErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	tEval := time.Now()
	// The result cache needs the materialized tuple table; collecting is the
	// only buffering this path does, and NoCache turns it off entirely.
	var collected []koko.Tuple
	shards := seq.NumShards()
	total := 0
	var emitErr error
	for ev := range seq.Events() {
		if t := ev.Tuple; t != nil {
			if !req.NoCache {
				collected = append(collected, *t)
			}
			tr := tupleResultOf(*t, 0, 0)
			total++
			if emitErr = emit(StreamEvent{Tuple: &tr}); emitErr != nil {
				break // breaking the range cancels the remaining evaluation
			}
			continue
		}
		if sh := ev.Shard; sh != nil {
			if emitErr = emit(StreamEvent{Shard: &ShardProgress{
				Shard: sh.Shard, Shards: shards,
				Tuples: sh.Tuples, TotalTuples: total,
			}}); emitErr != nil {
				break
			}
		}
	}
	if emitErr != nil {
		// The consumer went away (disconnect, write failure) — routine
		// client behavior, not a query error.
		s.metrics.queryCancels.Add(1)
		return emitErr
	}
	if err := seq.Err(); err != nil {
		if ctxDone(err) {
			s.metrics.queryCancels.Add(1)
			return err
		}
		s.metrics.queryErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}

	// Elapsed is the drain's wall time: with pull-driven evaluation there is
	// no separate evaluation clock (the consumer's pace IS the evaluation
	// pace), matching what Collect reports in buffered mode.
	res := seq.Summary()
	res.Tuples = collected
	res.Elapsed = time.Since(tEval)
	s.metrics.queryNanos.Add(res.Elapsed.Nanoseconds())
	s.recordPlan(res)
	s.metrics.tuplesReturned.Add(int64(total))
	s.cachePut(key, req, res)
	return emit(StreamEvent{Done: &StreamSummary{
		Corpus:        req.Corpus,
		Generation:    gen,
		Tuples:        total,
		Candidates:    res.Candidates,
		Matched:       res.Matched,
		Phases:        phasesOf(res),
		Plan:          res.Plan,
		ServiceMillis: ms(time.Since(t0)),
	}})
}

// streamResult flushes an already-evaluated (cached) result as one stream.
func (s *Service) streamResult(corpus string, gen uint64, res *koko.Result, cached bool, t0 time.Time, emit func(StreamEvent) error) error {
	s.metrics.tuplesReturned.Add(int64(len(res.Tuples)))
	for i := range res.Tuples {
		tr := tupleResultOf(res.Tuples[i], 0, 0)
		if err := emit(StreamEvent{Tuple: &tr}); err != nil {
			return err
		}
	}
	return emit(StreamEvent{Done: &StreamSummary{
		Corpus:        corpus,
		Generation:    gen,
		Tuples:        len(res.Tuples),
		Candidates:    res.Candidates,
		Matched:       res.Matched,
		Cached:        cached,
		Phases:        phasesOf(res),
		Plan:          res.Plan,
		ServiceMillis: ms(time.Since(t0)),
	}})
}

// handleQueryStream answers a query as NDJSON. Errors before the first
// byte become ordinary HTTP error responses; errors after it are appended
// as a terminal {"error": ...} line (the status line is long gone).
func (s *Service) handleQueryStream(w http.ResponseWriter, r *http.Request, req QueryRequest) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	started := false
	pending := 0
	err := s.QueryStream(r.Context(), req, func(ev StreamEvent) error {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		// Flush every flushEvery tuple lines and on shard/done boundaries:
		// tuples arrive one at a time from the pull-driven iterator, so the
		// cadence — not shard completion — is what puts the first lines on
		// the wire while evaluation is still running, without paying a
		// syscall per line.
		pending++
		if flusher != nil && (pending >= flushEvery || ev.Shard != nil || ev.Done != nil) {
			flusher.Flush()
			pending = 0
		}
		return nil
	})
	if err == nil {
		return
	}
	if !started {
		writeError(w, err)
		return
	}
	_ = enc.Encode(StreamEvent{Error: err.Error()})
	if flusher != nil {
		flusher.Flush()
	}
}
