package server

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"repro/koko"
)

// resultCache is an LRU cache of query results, keyed on
// corpus|generation|explain|canonical-query by the Service. Values are
// shared between requests and MUST be treated as immutable by readers.
//
// The cache is bounded two ways: by entry count and by the total number of
// cached tuples (the dominant memory cost of a result). When either budget
// is exceeded, least-recently-used entries are evicted until both hold — so
// one query returning a huge tuple table pushes out many small results, and
// a result larger than the whole tuple budget is simply not retained
// (admission by size, the ROADMAP's memory-bounds item).
//
// Entries may additionally carry a TTL (chosen per put, so per-corpus
// policies compose): an expired entry is treated as a miss and removed
// lazily at lookup — no sweeper goroutine, time-sensitive corpora simply
// stop serving stale results.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxTuples  int        // <= 0 means no tuple budget
	tuples     int        // current total tuple count across entries
	ll         *list.List // front = most recently used
	m          map[string]*list.Element
}

type cacheEntry struct {
	key    string
	res    *koko.Result
	tuples int
	// expires is the entry's lazy expiry deadline; zero means no TTL.
	expires time.Time
}

func newResultCache(maxEntries, maxTuples int) *resultCache {
	if maxEntries <= 0 {
		return nil // caching disabled
	}
	return &resultCache{
		maxEntries: maxEntries,
		maxTuples:  maxTuples,
		ll:         list.New(),
		m:          map[string]*list.Element{},
	}
}

func (c *resultCache) get(key string) (*koko.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && time.Now().After(e.expires) {
		c.ll.Remove(el)
		c.tuples -= e.tuples
		delete(c.m, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.res, true
}

// put stores res under key. ttl > 0 gives the entry a lazy expiry deadline;
// ttl <= 0 means the entry lives until evicted or invalidated by a
// generation bump.
func (c *resultCache) put(key string, res *koko.Result, ttl time.Duration) {
	if c == nil {
		return
	}
	n := len(res.Tuples)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Admission by size: a result larger than the whole tuple budget can
	// never fit, so refuse it up front instead of letting the eviction loop
	// drain the entire warm set before dropping it anyway. The stale-entry
	// removal below is unreachable under the Service's deterministic keying
	// (same key ⇒ same tuple count ⇒ it was refused too) but keeps the
	// cache's accounting self-contained for any other caller.
	if c.maxTuples > 0 && n > c.maxTuples {
		if el, ok := c.m[key]; ok {
			c.ll.Remove(el)
			c.tuples -= el.Value.(*cacheEntry).tuples
			delete(c.m, key)
		}
		return
	}
	var expires time.Time
	if ttl > 0 {
		expires = time.Now().Add(ttl)
	}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.tuples += n - e.tuples
		e.res, e.tuples, e.expires = res, n, expires
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, tuples: n, expires: expires})
		c.tuples += n
	}
	for c.ll.Len() > 0 && (c.ll.Len() > c.maxEntries || (c.maxTuples > 0 && c.tuples > c.maxTuples)) {
		el := c.ll.Back()
		c.ll.Remove(el)
		e := el.Value.(*cacheEntry)
		c.tuples -= e.tuples
		delete(c.m, e.key)
	}
}

// dropCorpus removes every entry belonging to the named corpus (keys are
// "corpus|generation|..."). Generation bumps already make such entries
// unreachable; dropping them on corpus deletion returns their tuple budget
// to live corpora immediately instead of waiting for LRU pressure.
func (c *resultCache) dropCorpus(name string) {
	if c == nil {
		return
	}
	prefix := name + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.m {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			c.tuples -= el.Value.(*cacheEntry).tuples
			delete(c.m, key)
		}
	}
}

func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// tupleCount reports the total tuples held across all entries.
func (c *resultCache) tupleCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tuples
}
