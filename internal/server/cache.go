package server

import (
	"container/list"
	"sync"

	"repro/koko"
)

// resultCache is an LRU cache of query results, keyed on
// corpus|generation|explain|canonical-query by the Service. Values are
// shared between requests and MUST be treated as immutable by readers.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *koko.Result
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil // caching disabled
	}
	return &resultCache{max: max, ll: list.New(), m: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (*koko.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *koko.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
