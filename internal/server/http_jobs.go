package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/server/jobs"
)

// The /v1/jobs endpoints: submit a query batch, poll status, fetch the
// merged prefix of completed results (before the job finishes, if desired),
// and cancel. Job results render tuples through the same conversion as
// interactive queries, so a finished job's results are byte-identical to
// the equivalent buffered /v1/query responses.

func (s *Service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&spec); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	st, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// jobResultsResponse is the JSON form of a job's (possibly partial)
// results.
type jobResultsResponse struct {
	ID         string            `json:"id"`
	State      jobs.State        `json:"state"`
	Corpus     string            `json:"corpus"`
	Generation uint64            `json:"generation"`
	Error      string            `json:"error,omitempty"`
	Queries    []jobQueryResults `json:"queries"`
}

// jobQueryResults is one query's merged result prefix: complete reports
// whether every shard contributed, so a client can distinguish "empty" from
// "not finished yet".
type jobQueryResults struct {
	Index       int           `json:"index"`
	Canonical   string        `json:"canonical"`
	Complete    bool          `json:"complete"`
	ShardsTotal int           `json:"shards_total"`
	ShardsDone  int           `json:"shards_done"`
	Tuples      []TupleResult `json:"tuples"`
	Candidates  int           `json:"candidates"`
	Matched     int           `json:"matched"`
}

func (s *Service) handleJobResults(w http.ResponseWriter, r *http.Request) {
	res, err := s.jobs.Results(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	resp := jobResultsResponse{
		ID:         res.ID,
		State:      res.State,
		Corpus:     res.Corpus,
		Generation: res.Generation,
		Error:      res.Error,
		Queries:    make([]jobQueryResults, 0, len(res.Queries)),
	}
	for _, q := range res.Queries {
		jq := jobQueryResults{
			Index:       q.Index,
			Canonical:   q.Canonical,
			Complete:    q.Complete,
			ShardsTotal: q.ShardsTotal,
			ShardsDone:  q.ShardsDone,
			Tuples:      make([]TupleResult, 0, len(q.Result.Tuples)),
			Candidates:  q.Result.Candidates,
			Matched:     q.Result.Matched,
		}
		for _, t := range q.Result.Tuples {
			jq.Tuples = append(jq.Tuples, tupleResultOf(t, 0, 0))
		}
		resp.Queries = append(resp.Queries, jq)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
