package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestErrorEnvelope: every /v1 failure answers the unified envelope
// {"error":{"code":"...","message":"..."}} with the documented stable code
// and status.
func TestErrorEnvelope(t *testing.T) {
	svc := NewService(Config{CacheSize: 8})
	RegisterDemoCorpora(svc.Registry(), 2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"unknown corpus", "POST", "/v1/query",
			`{"corpus":"nope","query":"extract x:Entity from \"blogs\" if ()"}`,
			http.StatusNotFound, "not_found"},
		{"bad query", "POST", "/v1/query",
			`{"corpus":"demo-cafes","query":"extract nonsense"}`,
			http.StatusBadRequest, "bad_query"},
		{"undecodable body", "POST", "/v1/query", `{not json`,
			http.StatusBadRequest, "bad_request"},
		{"missing fields", "POST", "/v1/query", `{}`,
			http.StatusBadRequest, "bad_request"},
		{"unknown job", "GET", "/v1/jobs/absent", "",
			http.StatusNotFound, "not_found"},
		{"unreloadable corpus", "POST", "/v1/corpora/demo-cafes/reload", "",
			http.StatusConflict, "not_reloadable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("response is not the error envelope: %v", err)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}
