package server

import "repro/koko"

// Demo corpora: two small in-memory corpora that make a service queryable
// out of the box. kokod -demo registers them, the CI api-smoke step drives
// them over HTTP, and the differential tests pin streamed and job results
// against buffered responses on them.

// DemoQueries maps each demo corpus to a query that returns deterministic,
// non-empty tuples — the probe the smoke tests and examples use.
var DemoQueries = map[string]string{
	"demo-cafes": `extract x:Entity from "blogs" if ()
		satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`,
	"demo-food": `extract x:Str from "reviews" if
		(/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`,
}

// RegisterDemoCorpora installs the demo corpora in reg. shards > 1
// partitions each into that many doc-range shards so the fan-out (and
// shard-at-a-time jobs/streaming) path is exercisable without a store file.
// With durability configured, a demo corpus that already has durable state
// comes back from disk (with any previous run's ingests and deletes) and
// the freshly built seed is ignored.
func RegisterDemoCorpora(reg *Registry, shards int) error {
	build := func(c *koko.Corpus) koko.Querier {
		if shards > 1 {
			return koko.NewShardedEngine(c, shards, nil)
		}
		return koko.NewEngine(c, nil)
	}
	cafes := build(koko.NewCorpus(
		[]string{"seattle.txt", "portland.txt"},
		[]string{
			"Cafe Vita serves smooth espresso daily. Cafe Juanita hired a champion barista. " +
				"The neighborhood bakery sells fresh bread.",
			"Cafe Umbria opened a second location. The baristas at Cafe Umbria won a latte art championship.",
		}))
	if err := reg.Register("demo-cafes", cafes); err != nil {
		return err
	}

	food := build(koko.NewCorpus(
		[]string{"reviews.txt"},
		[]string{
			"I ate a chocolate ice cream, which was delicious, and also ate a pie. " +
				"Anna ate some delicious cheesecake that she bought at a grocery store.",
		}))
	return reg.Register("demo-food", food)
}
