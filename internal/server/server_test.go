package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/koko"
)

const cafeQuery = `
	extract x:Entity from "blogs" if ()
	satisfying x (str(x) contains "Cafe" {1.0})
	with threshold 0.5`

const cityQuery = `extract a:GPE from "geo" if () satisfying a (a SimilarTo "city" {1.0})`

func newTestService(t *testing.T) *Service {
	t.Helper()
	svc := NewService(Config{MaxConcurrent: 4, CacheSize: 32})
	cafes := koko.NewEngine(koko.NewCorpus(
		[]string{"a.txt", "b.txt"},
		[]string{
			"Cafe Vita serves smooth espresso daily.",
			"Cafe Juanita hired a champion barista. The pastries are stale.",
		}), nil)
	svc.Registry().Register("cafes", cafes)
	cities := koko.NewEngine(koko.NewCorpus(nil, []string{
		"cities in asian countries such as Beijing and Tokyo.",
	}), nil)
	svc.Registry().Register("cities", cities)
	return svc
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestHTTPEndToEnd drives every endpoint over real HTTP: query against two
// corpora, cache-hit on repeat, validate, corpora listing, stats, healthz,
// and metrics.
func TestHTTPEndToEnd(t *testing.T) {
	svc := newTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Query corpus 1: deterministic tuples.
	resp, body := postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "cafes", Query: cafeQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var q1 QueryResponse
	if err := json.Unmarshal(body, &q1); err != nil {
		t.Fatal(err)
	}
	if len(q1.Tuples) != 2 {
		t.Fatalf("cafes tuples = %v, want 2", q1.Tuples)
	}
	if got := []string{q1.Tuples[0].Values[0], q1.Tuples[1].Values[0]}; got[0] != "Cafe Vita" || got[1] != "Cafe Juanita" {
		t.Fatalf("cafes values = %v", got)
	}
	if q1.Cached {
		t.Error("first query reported cached")
	}
	if q1.Phases.Total <= 0 {
		t.Errorf("phase breakdown missing: %+v", q1.Phases)
	}

	// Identical query (different whitespace): cache hit, same tuples.
	_, body = postJSON(t, ts, "/v1/query", QueryRequest{
		Corpus: "cafes",
		Query:  "extract x:Entity from \"blogs\" if ()\n\t\tsatisfying x (str(x) contains \"Cafe\" {1.0}) with threshold 0.5",
	})
	var q2 QueryResponse
	if err := json.Unmarshal(body, &q2); err != nil {
		t.Fatal(err)
	}
	if !q2.Cached {
		t.Error("whitespace-variant repeat query missed the cache")
	}
	if len(q2.Tuples) != 2 || q2.Tuples[0].Values[0] != "Cafe Vita" {
		t.Fatalf("cached tuples differ: %v", q2.Tuples)
	}

	// Query corpus 2.
	resp, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "cities", Query: cityQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cities query status %d: %s", resp.StatusCode, body)
	}
	var q3 QueryResponse
	if err := json.Unmarshal(body, &q3); err != nil {
		t.Fatal(err)
	}
	if len(q3.Tuples) != 2 {
		t.Fatalf("cities tuples = %v, want Beijing and Tokyo", q3.Tuples)
	}

	// Explain toggles evidence per request.
	_, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "cafes", Query: cafeQuery, Explain: true})
	var q4 QueryResponse
	if err := json.Unmarshal(body, &q4); err != nil {
		t.Fatal(err)
	}
	if q4.Cached {
		t.Error("explain=true must not share the explain=false cache entry")
	}
	if len(q4.Tuples) == 0 || len(q4.Tuples[0].Evidence) == 0 {
		t.Fatalf("explain query returned no evidence: %+v", q4.Tuples)
	}

	// Unknown corpus -> 404; bad query -> 400.
	resp, _ = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "nope", Query: cafeQuery})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown corpus status = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "cafes", Query: "extract from if"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d, want 400", resp.StatusCode)
	}
	// Reloading an in-memory corpus is a client error, not a server error.
	resp, _ = postJSON(t, ts, "/v1/corpora/cafes/reload", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("in-memory reload status = %d, want 409", resp.StatusCode)
	}

	// Validate: good and bad.
	_, body = postJSON(t, ts, "/v1/validate", map[string]string{"query": cafeQuery})
	var v validateResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Valid || v.Canonical == "" {
		t.Errorf("validate(good) = %+v", v)
	}
	_, body = postJSON(t, ts, "/v1/validate", map[string]string{"query": "extract from if"})
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Valid || v.Error == "" {
		t.Errorf("validate(bad) = %+v", v)
	}

	// Corpora listing.
	var listing struct {
		Corpora []CorpusInfo `json:"corpora"`
	}
	getJSON(t, ts, "/v1/corpora", &listing)
	if len(listing.Corpora) != 2 || listing.Corpora[0].Name != "cafes" || listing.Corpora[1].Name != "cities" {
		t.Fatalf("corpora = %+v", listing.Corpora)
	}
	if listing.Corpora[0].Documents != 2 || listing.Corpora[0].Sentences != 3 {
		t.Errorf("cafes info = %+v", listing.Corpora[0])
	}

	// Stats.
	var st statsResponse
	if resp := getJSON(t, ts, "/v1/corpora/cafes/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.Index.Words == 0 || st.Index.Entities == 0 {
		t.Errorf("stats = %+v", st.Index)
	}
	if resp := getJSON(t, ts, "/v1/corpora/nope/stats", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing-corpus stats status = %d, want 404", resp.StatusCode)
	}

	// Healthz and metrics.
	var hz struct {
		Status  string `json:"status"`
		Corpora int    `json:"corpora"`
	}
	getJSON(t, ts, "/v1/healthz", &hz)
	if hz.Status != "ok" || hz.Corpora != 2 {
		t.Errorf("healthz = %+v", hz)
	}
	var msnap MetricsSnapshot
	getJSON(t, ts, "/v1/metrics", &msnap)
	if msnap.QueriesTotal < 4 || msnap.CacheHits < 1 || msnap.CacheMisses < 3 {
		t.Errorf("metrics = %+v", msnap)
	}
}

// TestReloadInvalidatesCache persists a corpus, serves a cached query,
// rewrites the store, reloads, and checks the next query sees fresh data
// (generation bump must bypass stale entries).
func TestReloadInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.koko")
	save := func(texts []string) {
		eng := koko.NewEngine(koko.NewCorpus(nil, texts), nil)
		if err := eng.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	save([]string{"Cafe Vita serves smooth espresso daily."})

	svc := NewService(Config{CacheSize: 8})
	if err := svc.Registry().LoadFile("c", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	q := `extract x:Entity from "f" if () satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`
	_, body := postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "c", Query: q})
	var r1 QueryResponse
	if err := json.Unmarshal(body, &r1); err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) != 1 || r1.Tuples[0].Values[0] != "Cafe Vita" {
		t.Fatalf("pre-reload tuples = %v", r1.Tuples)
	}
	// Warm the cache, then swap the store on disk and reload.
	_, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "c", Query: q})
	var r2 QueryResponse
	if err := json.Unmarshal(body, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("repeat query missed cache")
	}
	save([]string{"Cafe Umbria opened a second location."})
	resp, body := postJSON(t, ts, "/v1/corpora/c/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	var info CorpusInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation <= r1.Generation {
		t.Fatalf("generation not bumped: %d -> %d", r1.Generation, info.Generation)
	}

	_, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "c", Query: q})
	var r3 QueryResponse
	if err := json.Unmarshal(body, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("post-reload query served stale cache entry")
	}
	if len(r3.Tuples) != 1 || r3.Tuples[0].Values[0] != "Cafe Umbria" {
		t.Fatalf("post-reload tuples = %v", r3.Tuples)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestLRUEviction fills the cache past capacity and checks the oldest
// entry is evicted while recently used ones survive.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(2, 0)
	r := &koko.Result{}
	c.put("a", r, 0)
	c.put("b", r, 0)
	if _, ok := c.get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	c.put("c", r, 0) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestServiceQueryDirect exercises the Service path the CLI uses (no HTTP):
// cache hit on second call, NoCache bypass, context cancellation while
// waiting for a worker slot.
func TestServiceQueryDirect(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()

	r1, err := svc.Query(ctx, QueryRequest{Corpus: "cafes", Query: cafeQuery})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Query(ctx, QueryRequest{Corpus: "cafes", Query: cafeQuery})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r2.Cached {
		t.Errorf("cached flags = %t, %t; want false, true", r1.Cached, r2.Cached)
	}
	r3, err := svc.Query(ctx, QueryRequest{Corpus: "cafes", Query: cafeQuery, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("NoCache request reported cached")
	}

	// A canceled context must fail fast even when the pool is saturated.
	block := NewService(Config{MaxConcurrent: 1, CacheSize: -1})
	block.Registry().Register("cafes", koko.NewEngine(koko.NewCorpus(nil,
		[]string{"Cafe Vita serves smooth espresso daily."}), nil))
	block.sem <- struct{}{} // occupy the only slot
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := block.Query(canceled, QueryRequest{Corpus: "cafes", Query: cafeQuery}); err == nil {
		t.Error("expected context error when pool is saturated and ctx canceled")
	}
	<-block.sem
}

// TestConcurrentLoadSmoke fires parallel query mixes at one shared service
// over HTTP — the load-smoke test for the acceptance criterion. Run under
// -race it also proves cross-request engine safety at the service layer.
func TestConcurrentLoadSmoke(t *testing.T) {
	svc := newTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	type job struct {
		corpus, query string
		wantTuples    int
	}
	jobs := []job{
		{"cafes", cafeQuery, 2},
		{"cities", cityQuery, 2},
	}
	const clients = 8
	const perClient = 6
	errs := make(chan error, clients)
	for cIdx := 0; cIdx < clients; cIdx++ {
		go func(cIdx int) {
			for i := 0; i < perClient; i++ {
				j := jobs[(cIdx+i)%len(jobs)]
				b, _ := json.Marshal(QueryRequest{Corpus: j.corpus, Query: j.query, Explain: i%2 == 0})
				resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if len(qr.Tuples) != j.wantTuples {
					errs <- fmt.Errorf("client %d: %s returned %d tuples, want %d",
						cIdx, j.corpus, len(qr.Tuples), j.wantTuples)
					return
				}
			}
			errs <- nil
		}(cIdx)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	m := svc.Metrics()
	if m.QueriesTotal != clients*perClient {
		t.Errorf("queries_total = %d, want %d", m.QueriesTotal, clients*perClient)
	}
	if m.CacheHits == 0 {
		t.Error("expected cache hits under repeated load")
	}
	if m.InFlight != 0 {
		t.Errorf("in_flight = %d after drain, want 0", m.InFlight)
	}
}
