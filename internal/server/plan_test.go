package server

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/koko"
)

// Cache-key plan invariance and the /v1/query plan surface: two different
// writings of the same conjunction canonicalize to one cache entry, plan
// on/off keep separate entries, and planner activity shows up in the
// response plan block and the metrics counters.

// planWrittenA and planWrittenB are the same conjunction with the
// independent conditions written in different orders; Canonical() maps both
// to one text, so they must share a cache entry.
const planWrittenA = `
	extract x:Str from "moments" if (
	/ROOT:{ v = //verb, o = v/dobj, x = (o.subtree), z = ^[min=1,max=2] } (z) in (x))`

const planWrittenB = `
	extract x:Str from "moments" if (
	/ROOT:{ z = ^[min=1,max=2], v = //verb, o = v/dobj, x = (o.subtree) } (z) in (x))`

func newPlanTestService(t *testing.T) *Service {
	t.Helper()
	svc := NewService(Config{MaxConcurrent: 4, CacheSize: 32})
	eng := koko.NewEngine(koko.WrapCorpus(corpus.GenHappyDB(120, 5)), nil)
	svc.Registry().Register("moments", eng)
	return svc
}

// TestPlanInvariantCacheKey: a reordered-but-equivalent conjunction is a
// cache hit, while flipping the planner on/off is not.
func TestPlanInvariantCacheKey(t *testing.T) {
	svc := newPlanTestService(t)
	ctx := context.Background()

	r1, err := svc.Query(ctx, QueryRequest{Corpus: "moments", Query: planWrittenA})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first query reported cached")
	}
	r2, err := svc.Query(ctx, QueryRequest{Corpus: "moments", Query: planWrittenB})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("reordered-but-equivalent conjunction missed the cache")
	}
	if len(r2.Tuples) != len(r1.Tuples) {
		t.Fatalf("cache hit returned %d tuples, want %d", len(r2.Tuples), len(r1.Tuples))
	}

	// Plan "on" is the service default here, so an explicit "on" shares the
	// entry and "off" does not.
	rOn, err := svc.Query(ctx, QueryRequest{Corpus: "moments", Query: planWrittenA, Plan: "on"})
	if err != nil {
		t.Fatal(err)
	}
	if !rOn.Cached {
		t.Fatal("explicit plan=on missed the default-plan cache entry")
	}
	rOff, err := svc.Query(ctx, QueryRequest{Corpus: "moments", Query: planWrittenA, Plan: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if rOff.Cached {
		t.Fatal("plan=off hit the plan=on cache entry")
	}
	if rOff.Plan != nil {
		t.Fatal("plan=off response carries a plan block")
	}
	rOff2, err := svc.Query(ctx, QueryRequest{Corpus: "moments", Query: planWrittenB, Plan: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if !rOff2.Cached {
		t.Fatal("equivalent plan=off query missed the plan=off cache entry")
	}
}

// TestPlanSurface: the response plan block reports the chosen order with
// estimates and actuals, and the metrics counters move when a query is
// reordered.
func TestPlanSurface(t *testing.T) {
	svc := newPlanTestService(t)
	ctx := context.Background()

	before := svc.Metrics()
	// Adversarial writing: elastic first, phrase last — the planner must
	// reorder (see internal/experiments/planbench.go for the shape).
	src := `extract a:Str from "moments" if (
		/ROOT:{ a = ^[min=1,max=2], v = //verb, w = "today and" } (w) in (a))`
	r, err := svc.Query(ctx, QueryRequest{Corpus: "moments", Query: src})
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan == nil {
		t.Fatal("planned query response has no plan block")
	}
	if !r.Plan.Reordered {
		t.Fatal("adversarial query was not reordered")
	}
	if len(r.Plan.Steps) != 3 {
		t.Fatalf("plan has %d steps, want 3", len(r.Plan.Steps))
	}
	if first := r.Plan.Steps[0]; first.Var != "w" || first.Kind != "tokens" {
		t.Fatalf("plan did not move the phrase first: %+v", first)
	}
	for _, st := range r.Plan.Steps {
		if st.Estimated <= 0 {
			t.Fatalf("step %q has no estimate: %+v", st.Var, st)
		}
	}

	after := svc.Metrics()
	if after.PlansReordered != before.PlansReordered+1 {
		t.Fatalf("plans_reordered = %d, want %d", after.PlansReordered, before.PlansReordered+1)
	}
	if after.PlanTimeMicros < before.PlanTimeMicros {
		t.Fatalf("plan_time_us went backwards: %d -> %d", before.PlanTimeMicros, after.PlanTimeMicros)
	}
	if after.QueriesTotal == before.QueriesTotal {
		t.Fatal("queries counter did not move")
	}
}
