package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/koko"
)

func shardTestTexts(n int) ([]string, []string) {
	var names, texts []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("doc%02d.txt", i))
		texts = append(texts, fmt.Sprintf(
			"Cafe Number%d serves smooth espresso daily. The barista pulled shot %d.", i, i))
	}
	return names, texts
}

// TestServiceShardedQuery routes a query through a sharded registry entry
// and checks the response matches the plain engine byte-for-byte, with
// shard metadata surfaced in /v1/corpora and /v1/stats.
func TestServiceShardedQuery(t *testing.T) {
	names, texts := shardTestTexts(8)
	c := koko.NewCorpus(names, texts)

	plainSvc := NewService(Config{CacheSize: -1})
	plainSvc.Registry().Register("cafes", koko.NewEngine(c, nil))
	shardSvc := NewService(Config{CacheSize: -1})
	shardSvc.Registry().Register("cafes", koko.NewShardedEngine(c, 3, nil))

	req := QueryRequest{Corpus: "cafes", Query: cafeQuery, Explain: true, Workers: 2}
	want, err := plainSvc.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardSvc.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Tuples) == 0 {
		t.Fatal("plain service returned no tuples")
	}
	if !reflect.DeepEqual(want.Tuples, got.Tuples) {
		t.Fatalf("sharded tuples differ:\n got %+v\nwant %+v", got.Tuples, want.Tuples)
	}
	if want.Candidates != got.Candidates || want.Matched != got.Matched {
		t.Errorf("counts differ: %d/%d vs %d/%d", got.Candidates, got.Matched, want.Candidates, want.Matched)
	}

	ts := httptest.NewServer(shardSvc.Handler())
	defer ts.Close()
	var listing struct {
		Corpora []CorpusInfo `json:"corpora"`
	}
	getJSON(t, ts, "/v1/corpora", &listing)
	if len(listing.Corpora) != 1 || listing.Corpora[0].Shards != 3 {
		t.Fatalf("corpora = %+v, want one entry with 3 shards", listing.Corpora)
	}
	if listing.Corpora[0].Documents != 8 {
		t.Errorf("documents = %d, want 8", listing.Corpora[0].Documents)
	}

	var st statsResponse
	getJSON(t, ts, "/v1/corpora/cafes/stats", &st)
	if len(st.Shards) != 3 {
		t.Fatalf("shard_stats = %+v, want 3 entries", st.Shards)
	}
	docs, words := 0, 0
	for i, ss := range st.Shards {
		if ss.Shard != i || ss.Documents == 0 || ss.Index.Words == 0 {
			t.Errorf("shard stat %d = %+v", i, ss)
		}
		docs += ss.Documents
		words += ss.Index.Words
	}
	if docs != 8 {
		t.Errorf("shard docs sum to %d, want 8", docs)
	}
	if st.Index.Words != words {
		t.Errorf("aggregate words %d != per-shard sum %d", st.Index.Words, words)
	}
}

// TestRegistryLoadFileSharded: a plain store loaded into a registry with a
// default shard count comes up sharded; reload swaps the whole shard set
// atomically at one new generation; a persisted sharded manifest keeps its
// on-disk shard count regardless of the registry default.
func TestRegistryLoadFileSharded(t *testing.T) {
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.koko")
	names, texts := shardTestTexts(6)
	if err := koko.NewEngine(koko.NewCorpus(names, texts), nil).Save(plainPath); err != nil {
		t.Fatal(err)
	}

	svc := NewService(Config{CacheSize: 8, Shards: 3})
	if err := svc.Registry().LoadFile("plain", plainPath); err != nil {
		t.Fatal(err)
	}
	info, err := svc.Registry().Info("plain")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 3 {
		t.Fatalf("plain store loaded with %d shards, want 3 (registry default)", info.Shards)
	}

	// Query, warm the cache, rewrite the store, reload: new generation, new
	// data, still sharded.
	q := `extract x:Entity from "f" if () satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`
	r1, err := svc.Query(context.Background(), QueryRequest{Corpus: "plain", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) != 6 {
		t.Fatalf("pre-reload tuples = %d, want 6", len(r1.Tuples))
	}
	names2, texts2 := shardTestTexts(4)
	if err := koko.NewEngine(koko.NewCorpus(names2, texts2), nil).Save(plainPath); err != nil {
		t.Fatal(err)
	}
	info2, err := svc.Reload("plain")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Generation <= info.Generation || info2.Shards != 3 {
		t.Fatalf("reload info = %+v (was gen=%d)", info2, info.Generation)
	}
	r2, err := svc.Query(context.Background(), QueryRequest{Corpus: "plain", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached || len(r2.Tuples) != 4 {
		t.Fatalf("post-reload: cached=%t tuples=%d, want fresh 4", r2.Cached, len(r2.Tuples))
	}

	// A sharded manifest keeps its own shard count (2), even though the
	// registry default is 3.
	manifestPath := filepath.Join(dir, "manifest.koko")
	if err := koko.NewShardedEngine(koko.NewCorpus(names, texts), 2, nil).Save(manifestPath); err != nil {
		t.Fatal(err)
	}
	if err := svc.Registry().LoadFile("manifest", manifestPath); err != nil {
		t.Fatal(err)
	}
	minfo, err := svc.Registry().Info("manifest")
	if err != nil {
		t.Fatal(err)
	}
	if minfo.Shards != 2 {
		t.Fatalf("manifest loaded with %d shards, want its on-disk 2", minfo.Shards)
	}
	mi, err := svc.Reload("manifest")
	if err != nil {
		t.Fatal(err)
	}
	if mi.Shards != 2 || mi.Generation <= minfo.Generation {
		t.Fatalf("manifest reload = %+v", mi)
	}
}

// TestShardParallelPolicy: the service bounds per-query shard fan-out
// inversely with its pool size so concurrent requests cannot oversubscribe
// the CPU; explicit config wins; negative leaves the engine default.
func TestShardParallelPolicy(t *testing.T) {
	names, texts := shardTestTexts(6)
	c := koko.NewCorpus(names, texts)

	svc := NewService(Config{MaxConcurrent: 4, ShardParallel: 2})
	se := koko.NewShardedEngine(c, 3, nil)
	svc.Registry().Register("s", se)
	if se.Parallelism() != 2 {
		t.Fatalf("explicit shard parallelism = %d, want 2", se.Parallelism())
	}

	// Auto: a pool of 1 hands the whole 2×GOMAXPROCS budget to the single
	// in-flight query.
	svc2 := NewService(Config{MaxConcurrent: 1})
	se2 := koko.NewShardedEngine(c, 3, nil)
	svc2.Registry().Register("s", se2)
	if want := 2 * runtime.GOMAXPROCS(0); se2.Parallelism() != want {
		t.Fatalf("auto shard parallelism = %d, want %d", se2.Parallelism(), want)
	}

	// Negative: the engine keeps its own default.
	se3 := koko.NewShardedEngine(c, 3, nil)
	def := se3.Parallelism()
	svc3 := NewService(Config{MaxConcurrent: 4, ShardParallel: -1})
	svc3.Registry().Register("s", se3)
	if se3.Parallelism() != def {
		t.Fatalf("negative config changed parallelism: %d -> %d", def, se3.Parallelism())
	}
}

// TestRegistryListDeterministic: List is sorted by name no matter the
// insertion order, so /v1/corpora output is stable.
func TestRegistryListDeterministic(t *testing.T) {
	reg := NewRegistry(nil)
	eng := koko.NewEngine(koko.NewCorpus(nil, []string{"Cafe Vita serves espresso."}), nil)
	for _, name := range []string{"zeta", "alpha", "mike", "beta", "omega", "delta"} {
		reg.Register(name, eng)
	}
	want := []string{"alpha", "beta", "delta", "mike", "omega", "zeta"}
	for trial := 0; trial < 3; trial++ {
		got := reg.List()
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i, info := range got {
			if info.Name != want[i] {
				t.Fatalf("trial %d: List()[%d] = %q, want %q", trial, i, info.Name, want[i])
			}
		}
	}
}

// TestCacheTupleBudget: the cache evicts LRU entries until the total cached
// tuple count fits the budget, and refuses to retain a single result larger
// than the whole budget.
func TestCacheTupleBudget(t *testing.T) {
	mkRes := func(n int) *koko.Result {
		r := &koko.Result{}
		for i := 0; i < n; i++ {
			r.Tuples = append(r.Tuples, koko.Tuple{SentenceID: i})
		}
		return r
	}
	c := newResultCache(100, 10)

	c.put("a", mkRes(4), 0)
	c.put("b", mkRes(4), 0)
	if c.len() != 2 || c.tupleCount() != 8 {
		t.Fatalf("len=%d tuples=%d, want 2/8", c.len(), c.tupleCount())
	}
	// +4 tuples exceeds 10: the LRU entry "a" must go.
	c.put("c", mkRes(4), 0)
	if _, ok := c.get("a"); ok {
		t.Error("a should have been evicted by the tuple budget")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("b should survive")
	}
	if c.tupleCount() != 8 {
		t.Errorf("tuples = %d, want 8", c.tupleCount())
	}

	// An oversized result is refused at admission — and must NOT drain the
	// warm entries to make room for something that can never fit.
	c.put("huge", mkRes(50), 0)
	if _, ok := c.get("huge"); ok {
		t.Error("oversized result must not be retained")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("b should survive an oversized put")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should survive an oversized put")
	}
	if c.tupleCount() > 10 {
		t.Errorf("tuples = %d over budget", c.tupleCount())
	}
	// An oversized replacement drops the stale entry under the same key.
	c.put("b", mkRes(50), 0)
	if _, ok := c.get("b"); ok {
		t.Error("oversized replacement must evict the stale entry")
	}

	// Replacing an entry adjusts the accounting instead of double counting.
	c2 := newResultCache(100, 10)
	c2.put("k", mkRes(3), 0)
	c2.put("k", mkRes(5), 0)
	if c2.len() != 1 || c2.tupleCount() != 5 {
		t.Errorf("after replace: len=%d tuples=%d, want 1/5", c2.len(), c2.tupleCount())
	}

	// Zero-tuple results still obey the entry bound.
	c3 := newResultCache(2, 10)
	c3.put("x", mkRes(0), 0)
	c3.put("y", mkRes(0), 0)
	c3.put("z", mkRes(0), 0)
	if c3.len() != 2 {
		t.Errorf("entry bound ignored: len=%d", c3.len())
	}

	// Negative budget disables the tuple bound entirely.
	c4 := newResultCache(100, -1)
	c4.put("big", mkRes(1000), 0)
	if _, ok := c4.get("big"); !ok {
		t.Error("tuple bound should be disabled when negative")
	}
}

// TestServiceCacheTupleMetric: the metrics snapshot reports cached tuple
// totals and the service honors CacheMaxTuples end to end.
func TestServiceCacheTupleMetric(t *testing.T) {
	names, texts := shardTestTexts(5)
	svc := NewService(Config{CacheSize: 32, CacheMaxTuples: 3})
	svc.Registry().Register("cafes", koko.NewEngine(koko.NewCorpus(names, texts), nil))

	// cafeQuery matches 5 documents -> 5 tuples > budget 3: not retained.
	r1, err := svc.Query(context.Background(), QueryRequest{Corpus: "cafes", Query: cafeQuery})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) != 5 {
		t.Fatalf("tuples = %d, want 5", len(r1.Tuples))
	}
	r2, err := svc.Query(context.Background(), QueryRequest{Corpus: "cafes", Query: cafeQuery})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Error("oversized result should not have been cached")
	}
	m := svc.Metrics()
	if m.CacheTuples != 0 {
		t.Errorf("cache_tuples = %d, want 0", m.CacheTuples)
	}

	// A query under budget is cached and counted.
	small := `extract x:Entity from "f" if () satisfying x (str(x) contains "Number1" {1.0}) with threshold 0.5`
	if _, err := svc.Query(context.Background(), QueryRequest{Corpus: "cafes", Query: small}); err != nil {
		t.Fatal(err)
	}
	r3, err := svc.Query(context.Background(), QueryRequest{Corpus: "cafes", Query: small})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Error("small result should be cached")
	}
	if m := svc.Metrics(); m.CacheTuples != len(r3.Tuples) {
		t.Errorf("cache_tuples = %d, want %d", m.CacheTuples, len(r3.Tuples))
	}
}
