package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/server/jobs"
	"repro/koko"
	"repro/koko/remote"
)

// Handler returns the kokod HTTP API over the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/validate", s.handleValidate)
	mux.HandleFunc("GET /v1/corpora", s.handleCorpora)
	mux.HandleFunc("GET /v1/corpora/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/corpora/{name}/reload", s.handleReload)
	mux.HandleFunc("POST /v1/corpora/{name}/documents", s.handleIngest)
	mux.HandleFunc("DELETE /v1/corpora/{name}/documents/{doc}", s.handleDocumentDelete)
	mux.HandleFunc("POST /v1/corpora/{name}/compact", s.handleCompact)
	mux.HandleFunc("DELETE /v1/corpora/{name}", s.handleCorpusDelete)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	// Worker-side endpoint of distributed execution: a coordinator's remote
	// engine evaluates individual shards here.
	mux.HandleFunc("POST /v1/internal/shard-eval", s.handleShardEval)
	return mux
}

// ErrorBody is the unified error envelope every /v1 endpoint answers
// failures with: {"error":{"code":"...","message":"..."}}. Code is a stable
// machine-readable identifier (the table in the README); Message is the
// human-readable detail and carries no stability guarantee.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeBadRequest answers a malformed request (undecodable body, missing
// required fields) — failures detected before the error ever becomes a
// sentinel writeError could classify.
func writeBadRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: ErrorBody{Code: "bad_request", Message: msg}})
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := "internal"
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, jobs.ErrNotFound), errors.Is(err, koko.ErrNoDocument):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, ErrBadQuery):
		status, code = http.StatusBadRequest, "bad_query"
	case errors.Is(err, jobs.ErrBadSpec):
		status, code = http.StatusBadRequest, "bad_spec"
	case errors.Is(err, koko.ErrEmptyDocument):
		status, code = http.StatusBadRequest, "empty_document"
	case errors.Is(err, ErrNotReloadable):
		status, code = http.StatusConflict, "not_reloadable"
	case errors.Is(err, ErrRemoteCorpus):
		status, code = http.StatusConflict, "remote_corpus"
	case errors.Is(err, ErrGenerationMoved):
		status, code = http.StatusConflict, "generation_moved"
	case errors.Is(err, jobs.ErrLimit):
		status, code = http.StatusTooManyRequests, "job_limit"
	case errors.Is(err, jobs.ErrDraining):
		status, code = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, remote.ErrShardUnavailable):
		// Every replica of some shard failed: the backend's fault, not the
		// client's.
		status, code = http.StatusBadGateway, "shard_unavailable"
	}
	writeJSON(w, status, errorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// maxBodyBytes bounds request bodies: queries are text a human wrote, not
// bulk data.
const maxBodyBytes = 1 << 20

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if req.Corpus == "" || req.Query == "" {
		writeBadRequest(w, `"corpus" and "query" are required`)
		return
	}
	if wantsStream(r) {
		// Degradation markers have nowhere to go in an NDJSON stream that
		// has already emitted tuples, so partial=ok is buffered-only.
		s.handleQueryStream(w, r, req)
		return
	}
	if r.URL.Query().Get("partial") == "ok" {
		req.Partial = true
	}
	resp, err := s.Query(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type validateRequest struct {
	Query string `json:"query"`
}

type validateResponse struct {
	Valid bool   `json:"valid"`
	Error string `json:"error,omitempty"`
	// Canonical is the normalized form the result cache keys on.
	Canonical string `json:"canonical,omitempty"`
}

func (s *Service) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req validateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if err := s.Validate(req.Query); err != nil {
		writeJSON(w, http.StatusOK, validateResponse{Valid: false, Error: err.Error()})
		return
	}
	canon, _ := koko.Canonical(req.Query)
	writeJSON(w, http.StatusOK, validateResponse{Valid: true, Canonical: canon})
}

func (s *Service) handleCorpora(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"corpora": s.reg.List()})
}

type statsResponse struct {
	CorpusInfo
	// Index aggregates across shards (summed sizes for a sharded corpus);
	// Shards breaks the same numbers out per shard.
	Index  indexStatsJSON   `json:"index"`
	Shards []shardStatsJSON `json:"shard_stats"`
}

type indexStatsJSON struct {
	Words          int     `json:"words"`
	Entities       int     `json:"entities"`
	PLNodes        int     `json:"pl_nodes"`
	POSNodes       int     `json:"pos_nodes"`
	PLCompression  float64 `json:"pl_compression"`
	POSCompression float64 `json:"pos_compression"`
}

type shardStatsJSON struct {
	Shard     int            `json:"shard"`
	Documents int            `json:"documents"`
	Sentences int            `json:"sentences"`
	Tokens    int            `json:"tokens,omitempty"`
	Index     indexStatsJSON `json:"index"`
	// Delta marks the mutable corpus's sealed delta riding along as the
	// last shard (ingested documents awaiting compaction).
	Delta bool `json:"delta,omitempty"`
}

func indexStatsOf(st koko.IndexStats) indexStatsJSON {
	return indexStatsJSON{
		Words: st.Words, Entities: st.Entities,
		PLNodes: st.PLNodes, POSNodes: st.POSNodes,
		PLCompression: st.PLCompression, POSCompression: st.POSCompression,
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	// One registry resolution for all three pieces, so a concurrent reload
	// can never produce a response mixing two generations.
	info, st, sh, err := s.reg.Describe(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	resp := statsResponse{CorpusInfo: info, Index: indexStatsOf(st)}
	for _, ss := range sh {
		resp.Shards = append(resp.Shards, shardStatsJSON{
			Shard:     ss.Shard,
			Documents: ss.Documents,
			Sentences: ss.Sentences,
			Tokens:    ss.Tokens,
			Index:     indexStatsOf(ss.Index),
			Delta:     ss.Delta,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleReload(w http.ResponseWriter, r *http.Request) {
	info, err := s.Reload(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "corpora": s.reg.Len()})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
