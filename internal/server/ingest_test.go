package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server/jobs"
	"repro/koko"
)

// hasValue reports whether any tuple carries the given extracted value.
func hasValue(tuples []TupleResult, v string) bool {
	for _, t := range tuples {
		for _, val := range t.Values {
			if val == v {
				return true
			}
		}
	}
	return false
}

// TestServiceIngestCompactLifecycle: ingest a document, see it at a new
// generation (cache invalidated), compact, and see byte-identical tuples
// with the delta folded away.
func TestServiceIngestCompactLifecycle(t *testing.T) {
	svc := NewService(Config{MaxConcurrent: 4, CacheSize: 32, Shards: 2})
	RegisterDemoCorpora(svc.Registry(), 2)
	ctx := context.Background()
	req := QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]}

	before, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if hasValue(before.Tuples, "Cafe Ladro") {
		t.Fatal("new cafe visible before ingest")
	}
	// Warm the cache.
	if resp, _ := svc.Query(ctx, req); !resp.Cached {
		t.Fatal("repeat query not cached")
	}

	info, doc, _, err := svc.Ingest("demo-cafes", "ladro.txt", "Cafe Ladro opened a new roastery downtown.")
	if err != nil {
		t.Fatal(err)
	}
	if info.DeltaDocs != 1 || info.Ingests != 1 || info.Generation <= before.Generation {
		t.Fatalf("post-ingest info: %+v", info)
	}
	if info.Documents != 3 { // demo-cafes has 2 docs; the ingest makes 3
		t.Fatalf("documents = %d, want 3", info.Documents)
	}
	if doc != 2 {
		t.Fatalf("ingested doc index = %d, want 2", doc)
	}

	after, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("ingest did not invalidate the cache (generation key)")
	}
	if !hasValue(after.Tuples, "Cafe Ladro") {
		t.Fatalf("ingested document not visible: %+v", after.Tuples)
	}
	if after.Generation != info.Generation {
		t.Fatalf("query generation %d, ingest generation %d", after.Generation, info.Generation)
	}

	cinfo, st, err := svc.Compact("demo-cafes")
	if err != nil {
		t.Fatal(err)
	}
	if st.Docs != 1 || cinfo.DeltaDocs != 0 || cinfo.Compactions != 1 {
		t.Fatalf("compact stats %+v info %+v", st, cinfo)
	}
	compacted, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted.Tuples) != len(after.Tuples) {
		t.Fatalf("compaction changed results: %d vs %d tuples", len(compacted.Tuples), len(after.Tuples))
	}
	for i := range after.Tuples {
		a, b := after.Tuples[i], compacted.Tuples[i]
		if a.SentenceID != b.SentenceID || a.Document != b.Document || a.Values[0] != b.Values[0] {
			t.Fatalf("tuple %d differs after compaction: %+v vs %+v", i, a, b)
		}
	}
	// Second compact is a no-op.
	if _, st, err := svc.Compact("demo-cafes"); err != nil || st.Docs != 0 {
		t.Fatalf("no-op compact: %+v, %v", st, err)
	}

	m := svc.Metrics()
	if m.IngestsTotal != 1 || m.CompactionsTotal != 1 || m.DeltaDocs != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestHTTPIngestCompactDelete drives the mutable-corpus surface over real
// HTTP: ingest -> query -> compact -> query -> stats -> delete -> 404.
func TestHTTPIngestCompactDelete(t *testing.T) {
	svc := NewService(Config{MaxConcurrent: 4, CacheSize: 32})
	RegisterDemoCorpora(svc.Registry(), 3)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var ing IngestResponse
	resp, body := postJSON(t, ts, "/v1/corpora/demo-cafes/documents",
		IngestRequest{Name: "ladro.txt", Text: "Cafe Ladro opened a new roastery downtown."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &ing)
	if ing.Corpus.DeltaDocs != 1 || ing.Document != 2 {
		t.Fatalf("ingest response %+v", ing)
	}

	var q QueryResponse
	resp, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &q)
	if !hasValue(q.Tuples, "Cafe Ladro") {
		t.Fatalf("ingested doc missing from HTTP query: %s", body)
	}

	// Stats shows the delta as the trailing shard.
	var st statsResponse
	getJSON(t, ts, "/v1/corpora/demo-cafes/stats", &st)
	if st.DeltaDocs != 1 || st.Ingests != 1 {
		t.Fatalf("stats %+v", st.CorpusInfo)
	}
	lastShard := st.Shards[len(st.Shards)-1]
	if !lastShard.Delta || lastShard.Documents != 1 {
		t.Fatalf("trailing shard not the delta: %+v", lastShard)
	}

	var comp CompactResponse
	resp, body = postJSON(t, ts, "/v1/corpora/demo-cafes/compact", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &comp)
	if comp.CompactedDocs != 1 || comp.Corpus.DeltaDocs != 0 || comp.Corpus.Compactions != 1 {
		t.Fatalf("compact response %+v", comp)
	}
	var q2 QueryResponse
	_, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
	mustUnmarshal(t, body, &q2)
	if !hasValue(q2.Tuples, "Cafe Ladro") || len(q2.Tuples) != len(q.Tuples) {
		t.Fatalf("post-compact query differs: %s", body)
	}

	// Empty text is a 400.
	resp, _ = postJSON(t, ts, "/v1/corpora/demo-cafes/documents", IngestRequest{Text: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty text status %d", resp.StatusCode)
	}
	// Unknown corpus is a 404.
	resp, _ = postJSON(t, ts, "/v1/corpora/nope/documents", IngestRequest{Text: "Hello there."})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown corpus ingest status %d", resp.StatusCode)
	}

	// Delete: the corpus disappears for queries, ingests, and jobs.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/corpora/demo-food", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "demo-food", Query: DemoQueries["demo-food"]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after delete status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	getJSON(t, ts, "/v1/metrics", &m)
	if m.CorporaDeleted != 1 || m.IngestsTotal != 1 || m.CompactionsTotal != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestJobPinnedAcrossIngest: a job's engine and generation are captured at
// submit; ingesting (and compacting) while it exists never changes what the
// job evaluates.
func TestJobPinnedAcrossIngest(t *testing.T) {
	svc := NewService(Config{MaxConcurrent: 2, CacheSize: -1})
	RegisterDemoCorpora(svc.Registry(), 2)
	ctx := context.Background()

	want, err := svc.Query(ctx, QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"], NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Jobs().Submit(jobs.Spec{Corpus: "demo-cafes", Queries: []string{DemoQueries["demo-cafes"]}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := svc.Ingest("demo-cafes", "ladro.txt", "Cafe Ladro opened a new roastery downtown."); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Compact("demo-cafes"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := svc.Jobs().Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			if cur.State != jobs.StateDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := svc.Jobs().Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != want.Generation {
		t.Fatalf("job ran at generation %d, want pinned %d", res.Generation, want.Generation)
	}
	got := res.Queries[0].Result
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("pinned job saw %d tuples, want %d (pre-ingest)", len(got.Tuples), len(want.Tuples))
	}
	for _, tp := range got.Tuples {
		for _, v := range tp.Values {
			if v == "Cafe Ladro" {
				t.Fatal("pinned job saw the post-submit document")
			}
		}
	}
}

// TestCacheMinCostAdmission: with a cost threshold above every demo query's
// evaluation time, nothing is admitted to the cache; with none, everything
// is.
func TestCacheMinCostAdmission(t *testing.T) {
	ctx := context.Background()
	expensive := NewService(Config{MaxConcurrent: 2, CacheSize: 32, CacheMinCost: time.Hour})
	RegisterDemoCorpora(expensive.Registry(), 1)
	req := QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]}
	for i := 0; i < 2; i++ {
		resp, err := expensive.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Fatalf("query %d served from cache despite min-cost", i)
		}
	}
	m := expensive.Metrics()
	if m.CacheCostSkips != 2 || m.CacheEntries != 0 {
		t.Fatalf("metrics %+v", m)
	}

	free := NewService(Config{MaxConcurrent: 2, CacheSize: 32})
	RegisterDemoCorpora(free.Registry(), 1)
	if _, err := free.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	if resp, _ := free.Query(ctx, req); !resp.Cached {
		t.Fatal("no-threshold service did not cache")
	}
}

// TestAutoCompaction: crossing MaxDeltaDocs kicks a background fold; the
// delta drains without an explicit compact call.
func TestAutoCompaction(t *testing.T) {
	svc := NewService(Config{MaxConcurrent: 2, CacheSize: -1, MaxDeltaDocs: 2})
	RegisterDemoCorpora(svc.Registry(), 1)
	texts := []string{
		"Cafe Ladro opened a new roastery downtown.",
		"Cafe Allegro brews a dark roast.",
		"Cafe Presse serves espresso at dawn.",
	}
	for i, txt := range texts {
		if _, _, _, err := svc.Ingest("demo-cafes", "", txt); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := svc.Registry().Info("demo-cafes")
		if err != nil {
			t.Fatal(err)
		}
		if info.Compactions >= 1 && info.DeltaDocs < 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never ran: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// All three documents visible regardless of where compaction landed.
	resp, err := svc.Query(context.Background(), QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"], NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Cafe Ladro", "Cafe Allegro", "Cafe Presse"} {
		if !hasValue(resp.Tuples, name) {
			t.Fatalf("missing %s after auto-compaction: %+v", name, resp.Tuples)
		}
	}
}

// TestIngestDeleteErrors: service-level error mapping.
func TestIngestDeleteErrors(t *testing.T) {
	svc := NewService(Config{MaxConcurrent: 2})
	RegisterDemoCorpora(svc.Registry(), 1)
	if _, _, _, err := svc.Ingest("nope", "", "Hello."); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown corpus: %v", err)
	}
	if _, _, _, err := svc.Ingest("demo-cafes", "", "   \n\t "); !errors.Is(err, koko.ErrEmptyDocument) {
		t.Fatalf("unparseable doc: %v", err)
	}
	if _, err := svc.DeleteCorpus("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown delete: %v", err)
	}
	if _, _, err := svc.Compact("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown compact: %v", err)
	}
	// Deleting drops cache entries for the corpus.
	ctx := context.Background()
	if _, err := svc.Query(ctx, QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]}); err != nil {
		t.Fatal(err)
	}
	if svc.Metrics().CacheEntries == 0 {
		t.Fatal("expected a cache entry")
	}
	if _, err := svc.DeleteCorpus("demo-cafes"); err != nil {
		t.Fatal(err)
	}
	if n := svc.Metrics().CacheEntries; n != 0 {
		t.Fatalf("cache still holds %d entries after delete", n)
	}
}

func mustUnmarshal(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal %s: %v", strings.TrimSpace(string(b)), err)
	}
}
