package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/koko"
	"repro/koko/remote"
)

// Distributed-execution tests: a coordinator Service connected to worker
// Services over real HTTP must answer byte-identically to a single-node
// Service over the same corpus — including after a worker is killed
// mid-suite — and the worker endpoint, degradation, and metrics surfaces
// must behave as documented.

// distCase mirrors the koko package's differential generators.
type distCase struct {
	name    string
	corpus  func() *koko.Corpus
	queries []string
}

func distCases() []distCase {
	return []distCase{
		{
			name:   "cafes",
			corpus: func() *koko.Corpus { return koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus) },
			queries: []string{
				`extract x:Entity from "blogs" if ()
				 satisfying x
				 (str(x) contains "Cafe" {0.6}) or
				 (x [["serves coffee"]] {0.3}) or
				 (x [["hired barista"]] {0.3})
				 with threshold 0.5
				 excluding (str(x) matches "[a-z 0-9.]+")`,
				`extract x:Entity from "blogs" if () satisfying x (x near "espresso" {1}) with threshold 0.4`,
			},
		},
		{
			name: "tweets",
			corpus: func() *koko.Corpus {
				return koko.WrapCorpus(corpus.GenWNUT(corpus.WNUTConfig{Tweets: 150, Seed: 7}).Corpus)
			},
			queries: []string{
				`extract x:Entity from "tweets" if ()
				 satisfying x
				 (x "vs" {0.9}) or ("vs" x {0.9}) or ("go" x {0.9})
				 with threshold 0.5`,
			},
		},
		{
			name:   "happydb",
			corpus: func() *koko.Corpus { return koko.WrapCorpus(corpus.GenHappyDB(300, 3)) },
			queries: []string{
				`extract e:Entity, d:Str from "moments" if
				 (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`,
				`extract o:Str from "moments" if (
				 /ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
				 satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`,
			},
		},
	}
}

// startWorker serves corpus name (sharded) over real HTTP as a worker node.
func startWorker(t *testing.T, name string, c *koko.Corpus, shards int) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(Config{MaxConcurrent: 8})
	if err := svc.Registry().Register(name, koko.NewShardedEngine(c, shards, nil)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// fastRemote is RemoteConfig tuned so injected failures resolve in
// milliseconds, with hedging off for determinism.
func fastRemote(workers ...string) RemoteConfig {
	return RemoteConfig{
		Workers:         workers,
		Replicas:        2,
		AttemptTimeout:  500 * time.Millisecond,
		MaxAttempts:     3,
		HedgeAfter:      -1,
		DiscoverTimeout: 5 * time.Second,
	}
}

// queryTuples runs one buffered query over HTTP and fails on non-200.
func httpQuery(t *testing.T, ts *httptest.Server, req QueryRequest) QueryResponse {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameResponses(t *testing.T, label string, want, got QueryResponse) {
	t.Helper()
	if want.Candidates != got.Candidates || want.Matched != got.Matched {
		t.Errorf("%s: candidates/matched = %d/%d, want %d/%d",
			label, got.Candidates, got.Matched, want.Candidates, want.Matched)
	}
	if len(want.Tuples) != len(got.Tuples) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if !reflect.DeepEqual(want.Tuples[i], got.Tuples[i]) {
			t.Fatalf("%s: tuple %d differs:\n got %+v\nwant %+v", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestDistributedDifferential: coordinator over two replicated workers,
// byte-identical to single-node for every generator and query — before a
// worker kill and after it (retries route around the corpse).
func TestDistributedDifferential(t *testing.T) {
	for _, tc := range distCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.corpus()

			// Single-node reference service over the unpartitioned corpus.
			ref := NewService(Config{MaxConcurrent: 8})
			if err := ref.Registry().Register("c", koko.NewEngine(c, nil)); err != nil {
				t.Fatal(err)
			}
			refTS := httptest.NewServer(ref.Handler())
			defer refTS.Close()

			_, w1 := startWorker(t, "c", c, 3)
			w2svc, w2 := startWorker(t, "c", c, 3)

			coord := NewService(Config{MaxConcurrent: 8})
			names, err := coord.ConnectWorkers(context.Background(), fastRemote(w1.URL, w2.URL))
			if err != nil {
				t.Fatalf("connect workers: %v", err)
			}
			if len(names) != 1 || names[0] != "c" {
				t.Fatalf("discovered corpora = %v, want [c]", names)
			}
			coordTS := httptest.NewServer(coord.Handler())
			defer coordTS.Close()

			refTuples := 0
			for qi, q := range tc.queries {
				for _, explain := range []bool{false, true} {
					req := QueryRequest{Corpus: "c", Query: q, Explain: explain, NoCache: true}
					want := httpQuery(t, refTS, req)
					got := httpQuery(t, coordTS, req)
					sameResponses(t, tc.name+"/both-alive", want, got)
					refTuples += len(want.Tuples)
					_ = qi
				}
			}
			if refTuples == 0 {
				t.Fatal("workload produces no tuples; differential is vacuous")
			}

			// Kill worker 1. Every shard keeps a replica on worker 2, so the
			// coordinator must still answer byte-identically via retries.
			w1.Close()
			for _, q := range tc.queries {
				req := QueryRequest{Corpus: "c", Query: q, NoCache: true}
				want := httpQuery(t, refTS, req)
				got := httpQuery(t, coordTS, req)
				sameResponses(t, tc.name+"/after-kill", want, got)
			}

			m := coord.Metrics()
			if m.RemoteAttempts == 0 {
				t.Error("remote_attempts stayed 0 on a coordinator")
			}
			if m.RemoteRetries == 0 {
				t.Error("remote_retries stayed 0 despite a killed worker")
			}
			if w2svc.Metrics().ShardEvalsServed == 0 {
				t.Error("surviving worker served no shard evals")
			}
		})
	}
}

// TestShardEvalEndpoint drives the worker endpoint directly: status codes
// for unknown corpus, bad shard, bad query, and a moved generation; a valid
// call returns a checksummed partial at the serving generation.
func TestShardEvalEndpoint(t *testing.T) {
	c := koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus)
	svc, ts := startWorker(t, "c", c, 3)

	post := func(req remote.ShardEvalRequest) (*http.Response, []byte) {
		t.Helper()
		resp, body := postJSON(t, ts, remote.EvalPath, req)
		return resp, body
	}
	goodQuery := `extract x:Entity from "blogs" if () satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`

	if resp, body := post(remote.ShardEvalRequest{Corpus: "nope", Shard: 0, Query: goodQuery}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown corpus status = %d (%s), want 404", resp.StatusCode, body)
	}
	if resp, body := post(remote.ShardEvalRequest{Corpus: "c", Shard: 9, Query: goodQuery}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad shard status = %d (%s), want 400", resp.StatusCode, body)
	}
	if resp, body := post(remote.ShardEvalRequest{Corpus: "c", Shard: 0, Query: "not a query"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d (%s), want 400", resp.StatusCode, body)
	}
	if resp, body := post(remote.ShardEvalRequest{Corpus: "c", Shard: 0, Query: goodQuery, Generation: 99}); resp.StatusCode != http.StatusConflict {
		t.Errorf("moved generation status = %d (%s), want 409", resp.StatusCode, body)
	}

	resp, body := post(remote.ShardEvalRequest{Corpus: "c", Shard: 1, Query: goodQuery, Generation: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid shard-eval status = %d: %s", resp.StatusCode, body)
	}
	var ser remote.ShardEvalResponse
	if err := json.Unmarshal(body, &ser); err != nil {
		t.Fatal(err)
	}
	if ser.Generation != 1 {
		t.Errorf("response generation = %d, want 1", ser.Generation)
	}
	if got := remote.PartialChecksum(ser.Result); got != ser.Checksum {
		t.Errorf("stamped checksum %x does not match payload %x", ser.Checksum, got)
	}
	if ser.Result == nil {
		t.Fatal("nil result in 200 shard-eval response")
	}
	if svc.Metrics().ShardEvalsServed != 1 {
		t.Errorf("shard_evals_served = %d, want 1", svc.Metrics().ShardEvalsServed)
	}
}

// TestPartialOKDegradedHTTP: with replicas=1 and a worker killed, plain
// queries fail 502 with a shard-unavailable error while ?partial=ok returns
// 200 with the surviving shards, the degraded marker, and the failed shard
// list — and degraded responses never enter the result cache.
func TestPartialOKDegradedHTTP(t *testing.T) {
	c := koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus)
	_, w1 := startWorker(t, "c", c, 3)
	_, w2 := startWorker(t, "c", c, 3)

	coord := NewService(Config{MaxConcurrent: 8})
	rc := fastRemote(w1.URL, w2.URL)
	rc.Replicas = 1 // each shard lives on exactly one worker: no failover
	if _, err := coord.ConnectWorkers(context.Background(), rc); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	q := `extract x:Entity from "blogs" if () satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`
	full := httpQuery(t, ts, QueryRequest{Corpus: "c", Query: q, NoCache: true})
	if full.Degraded || len(full.FailedShards) != 0 {
		t.Fatalf("healthy query reported degraded: %+v", full)
	}

	w2.Close()
	resp, body := postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "c", Query: q, NoCache: true})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("strict query with a dead shard: status %d (%s), want 502", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts, "/v1/query?partial=ok", QueryRequest{Corpus: "c", Query: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial=ok status %d: %s", resp.StatusCode, body)
	}
	var deg QueryResponse
	if err := json.Unmarshal(body, &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded || len(deg.FailedShards) == 0 {
		t.Fatalf("partial=ok response not marked degraded: %+v", deg)
	}
	if len(deg.Tuples) == 0 || len(deg.Tuples) >= len(full.Tuples) {
		t.Fatalf("degraded tuples = %d, want non-empty strict subset of %d", len(deg.Tuples), len(full.Tuples))
	}
	for _, tu := range deg.Tuples {
		found := false
		for _, ft := range full.Tuples {
			if reflect.DeepEqual(tu, ft) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("degraded tuple %+v absent from the full result (attribution shifted?)", tu)
		}
	}

	// Degraded results are never cached: a repeat must re-evaluate.
	resp, body = postJSON(t, ts, "/v1/query?partial=ok", QueryRequest{Corpus: "c", Query: q})
	var again QueryResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("degraded result was served from the cache")
	}
	if m := coord.Metrics(); m.DegradedQueries < 2 {
		t.Errorf("degraded_queries = %d, want >= 2", m.DegradedQueries)
	}

	// The metrics JSON must expose every distributed counter by name.
	var raw map[string]any
	getJSON(t, ts, "/v1/metrics", &raw)
	for _, key := range []string{
		"remote_attempts", "remote_retries", "remote_hedges_fired", "remote_hedge_wins",
		"remote_corrupt_partials", "node_unhealthy", "breaker_open",
		"degraded_queries", "shard_evals_served",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/v1/metrics missing %q", key)
		}
	}
}

// TestRemoteCorpusGuards: a remote corpus rejects local mutation (409) and
// reload (409), reports Remote in listings, and unregistering drops only
// the routing view.
func TestRemoteCorpusGuards(t *testing.T) {
	c := koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus)
	wsvc, w := startWorker(t, "c", c, 3)

	coord := NewService(Config{MaxConcurrent: 4})
	if _, err := coord.ConnectWorkers(context.Background(), fastRemote(w.URL)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	var listing struct {
		Corpora []CorpusInfo `json:"corpora"`
	}
	getJSON(t, ts, "/v1/corpora", &listing)
	if len(listing.Corpora) != 1 || !listing.Corpora[0].Remote {
		t.Fatalf("coordinator listing = %+v, want one remote corpus", listing.Corpora)
	}

	resp, body := postJSON(t, ts, "/v1/corpora/c/documents", map[string]string{"name": "d", "text": "Cafe X."})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("ingest into remote corpus: status %d (%s), want 409", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts, "/v1/corpora/c/reload", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("reload of remote corpus: status %d (%s), want 409", resp.StatusCode, body)
	}

	if _, err := coord.DeleteCorpus("c"); err != nil {
		t.Fatalf("unregister remote corpus: %v", err)
	}
	if got := wsvc.Registry().Len(); got != 1 {
		t.Fatalf("worker lost its corpus on coordinator delete (len=%d)", got)
	}
}

// TestConnectWorkersDisagreement: workers serving different corpus shapes
// under one name must fail discovery, not silently merge mismatched data.
func TestConnectWorkersDisagreement(t *testing.T) {
	c1 := koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus)
	c2 := koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(13)).Corpus)
	if c1.NumSentences() == c2.NumSentences() {
		t.Skip("generator seeds produced identical corpora; disagreement case is vacuous")
	}
	_, w1 := startWorker(t, "c", c1, 3)
	_, w2 := startWorker(t, "c", c2, 3)
	coord := NewService(Config{MaxConcurrent: 4})
	if _, err := coord.ConnectWorkers(context.Background(), fastRemote(w1.URL, w2.URL)); err == nil {
		t.Fatal("mismatched workers connected without error")
	}
}
