package jobs

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/koko"
)

// Manager-level tests against a fake runtime: jobs must execute
// shard-at-a-time through the runtime's pool, report progress, survive a
// corpus swap (pinned engine), stop issuing shard evaluations when
// cancelled, enforce the active-job bound, and purge finished jobs after
// the retention TTL.

const jobQuery = `extract x:Entity from "blogs" if ()
	satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`

func jobCorpus(n int) *koko.Corpus {
	var names, texts []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("doc%02d.txt", i))
		texts = append(texts, fmt.Sprintf("Cafe Number%d serves smooth espresso daily.", i))
	}
	return koko.NewCorpus(names, texts)
}

// fakeRuntime backs the manager with a real engine and an unbounded pool.
type fakeRuntime struct {
	eng      koko.Querier
	gen      uint64
	acquires atomic.Int64
}

func (f *fakeRuntime) Engine(name string) (koko.Querier, uint64, error) {
	if name != "c" {
		return nil, 0, errors.New("corpus not found")
	}
	return f.eng, f.gen, nil
}

func (f *fakeRuntime) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.acquires.Add(1)
	return nil
}

func (f *fakeRuntime) Release()               {}
func (f *fakeRuntime) ShardWorkers(n int) int { return 1 }

// gatedQuerier wraps a Querier so StreamShard (the executor's per-shard
// evaluation call) blocks until released (or the context is cancelled),
// counting calls — the instrument for cancellation and limit tests.
type gatedQuerier struct {
	koko.Querier
	calls   atomic.Int32
	started chan struct{} // closed on first StreamShard
	release chan struct{} // close to let evaluations proceed
}

func newGated(q koko.Querier) *gatedQuerier {
	return &gatedQuerier{Querier: q, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedQuerier) StreamShard(ctx context.Context, shard int, p *koko.ParsedQuery, qo *koko.QueryOptions, emit func([]koko.Tuple) error) (*koko.Result, error) {
	if g.calls.Add(1) == 1 {
		close(g.started)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-g.release:
	}
	return g.Querier.StreamShard(ctx, shard, p, qo, emit)
}

func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (now %s)", id, want, st.State)
	return Status{}
}

func TestJobRunsToCompletion(t *testing.T) {
	c := jobCorpus(6)
	eng := koko.NewShardedEngine(c, 3, nil)
	rt := &fakeRuntime{eng: eng, gen: 7}
	m := New(rt, Config{})

	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery, jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 7 || st.Shards != 3 || st.ShardsTotal != 6 {
		t.Fatalf("submit status = %+v", st)
	}
	final := waitState(t, m, st.ID, StateDone)
	if final.ShardsDone != 6 {
		t.Fatalf("shards_done = %d, want 6", final.ShardsDone)
	}
	for _, pr := range final.Queries {
		if pr.ShardsDone != 3 || pr.Tuples != 6 {
			t.Fatalf("query progress = %+v, want 3 shards / 6 tuples", pr)
		}
	}
	// Each shard evaluation claimed exactly one pool slot.
	if got := rt.acquires.Load(); got != 6 {
		t.Fatalf("pool acquires = %d, want 6 (one per shard evaluation)", got)
	}

	// Results must equal the direct synchronous evaluation.
	want, err := eng.Query(jobQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 2 {
		t.Fatalf("results queries = %d", len(res.Queries))
	}
	for _, q := range res.Queries {
		if !q.Complete {
			t.Fatalf("query %d not complete", q.Index)
		}
		if !reflect.DeepEqual(q.Result.Tuples, want.Tuples) {
			t.Fatalf("query %d tuples differ:\n got %v\nwant %v", q.Index, q.Result.Tuples, want.Tuples)
		}
	}

	snap := m.Metrics()
	if snap.Submitted != 1 || snap.Done != 1 || snap.Retained != 1 || snap.QueueShards != 0 {
		t.Fatalf("metrics = %+v", snap)
	}
}

func TestJobCancelStopsShardEvaluations(t *testing.T) {
	g := newGated(koko.NewShardedEngine(jobCorpus(6), 3, nil))
	m := New(&fakeRuntime{eng: g}, Config{})

	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery, jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started // first shard evaluation is in flight (and blocked)

	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateCancelled)
	if final.ShardsDone != 0 {
		t.Fatalf("shards_done = %d after immediate cancel", final.ShardsDone)
	}
	// The executor must not have issued any further shard evaluations: the
	// one in flight was cancelled mid-run (its ctx fired), none followed.
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("shard evaluation started %d times after cancel, want 1", got)
	}
	// A cancelled job's results are still fetchable: the completed prefix.
	res, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateCancelled || res.Queries[0].Complete {
		t.Fatalf("cancelled results = state %s complete=%t", res.State, res.Queries[0].Complete)
	}
	close(g.release)
}

func TestJobPartialResultsMidRun(t *testing.T) {
	g := newGated(koko.NewShardedEngine(jobCorpus(6), 3, nil))
	m := New(&fakeRuntime{eng: g}, Config{})
	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	close(g.release) // let shards flow

	// The completed prefix is fetchable before the job finishes and is
	// always internally consistent (shards_done matches the merged tuples).
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := m.Results(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		q := res.Queries[0]
		// 2 docs per shard, 2 tuples per doc-pair with this query: the
		// tuple count must always equal 2 × shards_done.
		if got, want := len(q.Result.Tuples), 2*q.ShardsDone; got != want {
			t.Fatalf("prefix inconsistency: %d tuples at %d shards done", got, q.ShardsDone)
		}
		if q.Complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
	}
}

func TestJobLimitAndBadSpecs(t *testing.T) {
	g := newGated(koko.NewShardedEngine(jobCorpus(4), 2, nil))
	m := New(&fakeRuntime{eng: g}, Config{MaxActive: 2})

	if _, err := m.Submit(Spec{Queries: []string{jobQuery}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("missing corpus err = %v", err)
	}
	if _, err := m.Submit(Spec{Corpus: "c"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty queries err = %v", err)
	}
	if _, err := m.Submit(Spec{Corpus: "c", Queries: []string{"extract from if"}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unparsable query err = %v", err)
	}
	if _, err := m.Submit(Spec{Corpus: "nope", Queries: []string{jobQuery}}); err == nil {
		t.Fatal("unknown corpus accepted")
	}

	j1, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}}); !errors.Is(err, ErrLimit) {
		t.Fatalf("over-limit submit err = %v, want ErrLimit", err)
	}
	close(g.release)
	waitState(t, m, j1.ID, StateDone)
	waitState(t, m, j2.ID, StateDone)
	// Slots freed: submitting works again.
	j3, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	waitState(t, m, j3.ID, StateDone)
}

func TestJobSurvivesCorpusSwap(t *testing.T) {
	// The engine is pinned at submit: replacing the runtime's engine
	// mid-job (what a hot reload does) must not affect the running job.
	g := newGated(koko.NewShardedEngine(jobCorpus(6), 3, nil))
	rt := &fakeRuntime{eng: g, gen: 1}
	m := New(rt, Config{})
	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	rt.eng = koko.NewEngine(jobCorpus(1), nil) // "reload" swaps the entry
	rt.gen = 2
	close(g.release)
	final := waitState(t, m, st.ID, StateDone)
	if final.Generation != 1 {
		t.Fatalf("job generation = %d, want pinned 1", final.Generation)
	}
	res, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Queries[0].Result.Tuples); got != 6 {
		t.Fatalf("tuples = %d, want 6 from the pinned pre-swap corpus", got)
	}
}

func TestJobResultsTTL(t *testing.T) {
	eng := koko.NewEngine(jobCorpus(2), nil)
	m := New(&fakeRuntime{eng: eng}, Config{ResultsTTL: 30 * time.Millisecond})
	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	time.Sleep(60 * time.Millisecond)
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired job Get err = %v, want ErrNotFound", err)
	}
	if snap := m.Metrics(); snap.Retained != 0 || snap.Done != 1 {
		t.Fatalf("post-purge metrics = %+v", snap)
	}
}

func TestJobRetainedTupleBudget(t *testing.T) {
	// Each job retains 4 tuples (4 docs, 1 tuple each). Budget 6: the
	// second finished job must evict the first, TTL notwithstanding.
	eng := koko.NewEngine(jobCorpus(4), nil)
	m := New(&fakeRuntime{eng: eng}, Config{ResultsTTL: -1, MaxRetainedTuples: 6})

	j1, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j1.ID, StateDone)
	if snap := m.Metrics(); snap.RetainedTuples != 4 {
		t.Fatalf("retained tuples = %d, want 4", snap.RetainedTuples)
	}
	j2, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j2.ID, StateDone)
	if _, err := m.Get(j1.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job survived the retention budget: err = %v", err)
	}
	if _, err := m.Get(j2.ID); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	if snap := m.Metrics(); snap.RetainedTuples != 4 || snap.Retained != 1 {
		t.Fatalf("post-evict metrics = %+v", snap)
	}
	// Deleting the survivor returns the accounting to zero.
	if _, err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if snap := m.Metrics(); snap.RetainedTuples != 0 || snap.Retained != 0 {
		t.Fatalf("post-delete metrics = %+v", snap)
	}

	// A single job larger than the whole budget is never self-purged: its
	// results stay fetchable (the budget is soft by one job), and the next
	// finished job evicts it as oldest.
	over := New(&fakeRuntime{eng: eng}, Config{ResultsTTL: -1, MaxRetainedTuples: 2})
	big, err := over.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}}) // retains 4 > 2
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, over, big.ID, StateDone)
	res, err := over.Results(big.ID)
	if err != nil {
		t.Fatalf("oversized job self-purged: %v", err)
	}
	if got := len(res.Queries[0].Result.Tuples); got != 4 {
		t.Fatalf("oversized job tuples = %d, want 4", got)
	}
	next, err := over.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, over, next.ID, StateDone)
	if _, err := over.Get(big.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oversized job survived a newer finisher: err = %v", err)
	}
	if _, err := over.Get(next.ID); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

func TestJobDeleteFinished(t *testing.T) {
	eng := koko.NewEngine(jobCorpus(2), nil)
	m := New(&fakeRuntime{eng: eng}, Config{ResultsTTL: -1})
	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	// Negative TTL retains until deleted.
	if got, err := m.Get(st.ID); err != nil || got.State != StateDone {
		t.Fatalf("retained job: %+v, %v", got, err)
	}
	last, err := m.Cancel(st.ID) // DELETE on a finished job removes it
	if err != nil || last.State != StateDone {
		t.Fatalf("delete finished = %+v, %v", last, err)
	}
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted job Get err = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
}

// TestDrain: a draining manager finishes the running job, rejects new
// submits with ErrDraining, and a drain whose budget expires cancels what
// is left instead of hanging.
func TestDrain(t *testing.T) {
	g := newGated(koko.NewShardedEngine(jobCorpus(6), 3, nil))
	m := New(&fakeRuntime{eng: g}, Config{})
	st, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started

	done := make(chan error, 1)
	go func() { done <- m.Drain(context.Background()) }()
	// Draining rejects new work immediately, while the running job lives on.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := m.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("drain returned (%v) while a job was still running", err)
	default:
	}

	close(g.release) // let the job finish; drain must then complete
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := waitState(t, m, st.ID, StateDone); got.State != StateDone {
		t.Fatalf("job state after drain = %s", got.State)
	}

	// A drain that times out cancels the stuck job rather than hanging.
	g2 := newGated(koko.NewShardedEngine(jobCorpus(6), 3, nil))
	m2 := New(&fakeRuntime{eng: g2}, Config{})
	st2, err := m2.Submit(Spec{Corpus: "c", Queries: []string{jobQuery}})
	if err != nil {
		t.Fatal(err)
	}
	<-g2.started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m2.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired drain err = %v, want DeadlineExceeded", err)
	}
	waitState(t, m2, st2.ID, StateCancelled)
}
