// Package jobs runs query batches asynchronously over the koko serving
// stack: a job is submitted with POST /v1/jobs, executed shard-at-a-time on
// the server's bounded worker pool, and observed through a handle — status
// with per-query/per-shard progress, a merged prefix of completed partials
// fetchable before the job finishes, and context-based cancellation that
// stops in-flight shard evaluations.
//
// The design leans on the sharded execution layer (PR 3): a query over a
// K-shard corpus is K independent shard evaluations whose completed prefix
// is already mergeable in document order (koko.MergePartials), so progress
// reporting and partial results fall out of the Partial type rather than
// needing a separate accounting scheme. Because each shard evaluation
// claims one slot of the same pool interactive queries use — and releases
// it between shards — a long batch job interleaves with interactive
// traffic instead of starving it.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/koko"
)

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrNotFound marks an unknown (or already purged) job id (404).
	ErrNotFound = errors.New("job not found")
	// ErrLimit marks a submit beyond the active-job bound (429).
	ErrLimit = errors.New("too many active jobs")
	// ErrBadSpec marks an invalid job specification (400).
	ErrBadSpec = errors.New("bad job spec")
	// ErrDraining marks a submit during shutdown (503): the server is
	// finishing running jobs and will not start new ones.
	ErrDraining = errors.New("server draining")
)

// Runtime is what the job executor needs from the serving layer: corpus
// resolution and the shared bounded worker pool. The server's Service
// implements it; tests substitute fakes.
type Runtime interface {
	// Engine resolves a corpus name to its engine and current generation.
	Engine(name string) (koko.Querier, uint64, error)
	// Acquire claims one worker-pool slot, honoring ctx while waiting;
	// Release returns it. Jobs hold a slot only for the duration of one
	// shard evaluation, never across shards.
	Acquire(ctx context.Context) error
	Release()
	// ShardWorkers clamps a requested per-shard worker count to the
	// runtime's budget for a single-shard evaluation.
	ShardWorkers(requested int) int
}

// Config sizes a Manager.
type Config struct {
	// MaxActive bounds how many jobs may be pending or running at once;
	// submits beyond it fail with ErrLimit. 0 means the default (16).
	MaxActive int
	// ResultsTTL is how long a finished job (done, failed, or cancelled)
	// remains fetchable before being purged lazily. 0 means the default
	// (15 minutes); negative retains finished jobs until deleted.
	ResultsTTL time.Duration
	// MaxRetainedTuples bounds the total tuples held across finished jobs'
	// retained results (the counterpart of the result cache's tuple
	// budget): when a job finishes over budget, the oldest-finished jobs
	// are purged early, TTL notwithstanding. 0 means the default (200000);
	// negative disables the bound.
	MaxRetainedTuples int
}

// State is a job's lifecycle phase.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is a submitted job: a batch of queries against one corpus.
type Spec struct {
	Corpus  string   `json:"corpus"`
	Queries []string `json:"queries"`
	// Explain attaches per-condition evidence to every tuple.
	Explain bool `json:"explain,omitempty"`
	// Workers overrides the per-shard worker count (0 = runtime default).
	Workers int `json:"workers,omitempty"`
	// Plan selects the query planner ("on", "off", "" = runtime default),
	// mirroring the interactive query surface.
	Plan string `json:"plan,omitempty"`
}

// QueryProgress is one query's execution progress within a job.
type QueryProgress struct {
	Index       int    `json:"index"`
	Canonical   string `json:"canonical"`
	ShardsTotal int    `json:"shards_total"`
	ShardsDone  int    `json:"shards_done"`
	Tuples      int    `json:"tuples"`
	Candidates  int    `json:"candidates"`
	Matched     int    `json:"matched"`
}

// Status is a point-in-time snapshot of a job.
type Status struct {
	ID         string          `json:"id"`
	State      State           `json:"state"`
	Corpus     string          `json:"corpus"`
	Generation uint64          `json:"generation"`
	Shards     int             `json:"shards"`
	Queries    []QueryProgress `json:"queries"`
	// ShardsTotal / ShardsDone aggregate progress across all queries: a job
	// is len(Queries) × Shards shard evaluations.
	ShardsTotal int       `json:"shards_total"`
	ShardsDone  int       `json:"shards_done"`
	Error       string    `json:"error,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// QueryResults is one query's merged result prefix.
type QueryResults struct {
	Index       int
	Canonical   string
	Complete    bool
	ShardsTotal int
	ShardsDone  int
	// Result is the merge of the completed shard prefix, in global document
	// order — for a finished query, exactly the synchronous query result.
	Result *koko.Result
}

// Results is the partial-or-complete outcome of a job. The rendering to
// JSON lives in the HTTP layer so job results and interactive query
// responses share one tuple encoding.
type Results struct {
	ID         string
	State      State
	Corpus     string
	Generation uint64
	Error      string
	Queries    []QueryResults
}

// Snapshot is the metrics view of a Manager.
type Snapshot struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Pending   int   `json:"pending"`
	Running   int   `json:"running"`
	// QueueShards is the queue depth in the scheduler's own unit: shard
	// evaluations not yet completed across all active jobs.
	QueueShards int `json:"queue_shards"`
	// Retained counts finished jobs still held for result fetches;
	// RetainedTuples is their total tuple footprint (what
	// Config.MaxRetainedTuples bounds).
	Retained       int `json:"retained"`
	RetainedTuples int `json:"retained_tuples"`
}

// job is the manager-internal record. mu guards the mutable fields; parts
// are appended in shard order per query, so the locked prefix is always
// mergeable.
type job struct {
	mu       sync.Mutex
	id       string
	spec     Spec
	state    State
	err      string
	eng      koko.Querier
	gen      uint64
	shards   int
	parsed   []*koko.ParsedQuery
	progress []QueryProgress
	parts    [][]koko.Partial
	cancel   context.CancelFunc
	ctx      context.Context
	created  time.Time
	started  time.Time
	finished time.Time
	expires  time.Time // zero = never purge
	// tuples is the job's total retained tuple count, fixed at finalize —
	// the unit the manager's retention budget is accounted in.
	tuples int
	// accounted marks that tuples has been added to the manager's retained
	// total; deletion paths subtract only then. Guarded by Manager.mu, not
	// job.mu — it belongs to the manager's accounting, not the job's state.
	accounted bool
}

// Manager tracks and executes jobs. All methods are safe for concurrent
// use.
type Manager struct {
	rt        Runtime
	maxActive int
	ttl       time.Duration
	maxTuples int

	mu        sync.Mutex
	seq       uint64
	jobs      map[string]*job
	retained  int // total tuples across finished jobs' retained results
	submitted int64
	done      int64
	failed    int64
	cancelled int64
	// draining rejects new submits while Drain waits for active jobs to
	// finish (the graceful-shutdown path).
	draining bool
}

// New builds a Manager executing on rt.
func New(rt Runtime, cfg Config) *Manager {
	maxActive := cfg.MaxActive
	if maxActive <= 0 {
		maxActive = 16
	}
	ttl := cfg.ResultsTTL
	if ttl == 0 {
		ttl = 15 * time.Minute
	}
	maxTuples := cfg.MaxRetainedTuples
	if maxTuples == 0 {
		maxTuples = 200000
	}
	return &Manager{rt: rt, maxActive: maxActive, ttl: ttl, maxTuples: maxTuples, jobs: map[string]*job{}}
}

// Submit validates spec, registers the job, and starts executing it in the
// background. The engine (and its generation) is pinned at submit time, so
// a hot reload of the corpus never tears down a running job — it keeps
// evaluating the generation it started on while new queries see the new
// one.
func (m *Manager) Submit(spec Spec) (Status, error) {
	if spec.Corpus == "" || len(spec.Queries) == 0 {
		return Status{}, fmt.Errorf(`%w: "corpus" and a non-empty "queries" list are required`, ErrBadSpec)
	}
	parsed := make([]*koko.ParsedQuery, len(spec.Queries))
	for i, q := range spec.Queries {
		p, err := koko.ParseQuery(q)
		if err != nil {
			return Status{}, fmt.Errorf("%w: query %d: %v", ErrBadSpec, i, err)
		}
		parsed[i] = p
	}
	eng, gen, err := m.rt.Engine(spec.Corpus)
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("%w: not accepting new jobs", ErrDraining)
	}
	m.sweepLocked(time.Now())
	active := 0
	for _, j := range m.jobs {
		if !j.snapshotState().Terminal() {
			active++
		}
	}
	if active >= m.maxActive {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %d active, limit %d", ErrLimit, active, m.maxActive)
	}
	m.seq++
	m.submitted++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		spec:    spec,
		state:   StatePending,
		eng:     eng,
		gen:     gen,
		shards:  eng.NumShards(),
		parsed:  parsed,
		parts:   make([][]koko.Partial, len(parsed)),
		cancel:  cancel,
		ctx:     ctx,
		created: time.Now().UTC(),
	}
	j.progress = make([]QueryProgress, len(parsed))
	for i, p := range parsed {
		j.progress[i] = QueryProgress{Index: i, Canonical: p.Canonical(), ShardsTotal: j.shards}
	}
	m.jobs[j.id] = j
	m.mu.Unlock()

	go m.run(j)
	return j.status(), nil
}

// run executes the job: for each query, each shard in order, claiming one
// pool slot per shard evaluation so interactive traffic interleaves.
func (m *Manager) run(j *job) {
	defer m.finalize(j)
	j.mu.Lock()
	if j.state == StateCancelled {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.mu.Unlock()

	qo := &koko.QueryOptions{Explain: j.spec.Explain, Workers: m.rt.ShardWorkers(j.spec.Workers), Plan: j.spec.Plan}
	for qi := range j.parsed {
		for si := 0; si < j.shards; si++ {
			if j.ctx.Err() != nil {
				return
			}
			if err := m.rt.Acquire(j.ctx); err != nil {
				return // cancelled while queued for a slot
			}
			// Stream the shard: every delivered batch becomes a zero-offset
			// sub-partial (tuples arrive already in global coordinates), so
			// the fetchable result prefix and the tuple progress counter grow
			// while the shard is still evaluating — a giant shard's result is
			// visible long before its summary. The counters land once, in the
			// tuple-less summary partial, so the merged prefix stays exactly
			// what a buffered RunShard per shard would have produced.
			sum, err := j.eng.StreamShard(j.ctx, si, j.parsed[qi], qo, func(ts []koko.Tuple) error {
				j.mu.Lock()
				j.parts[qi] = append(j.parts[qi], koko.Partial{Res: &koko.Result{Tuples: ts}})
				j.progress[qi].Tuples += len(ts)
				j.mu.Unlock()
				return nil
			})
			m.rt.Release()
			if err != nil {
				if j.ctx.Err() != nil {
					return // cancellation surfaced as the shard's error
				}
				j.mu.Lock()
				j.err = fmt.Sprintf("query %d shard %d: %v", qi, si, err)
				j.mu.Unlock()
				return
			}
			j.mu.Lock()
			if sum != nil {
				j.parts[qi] = append(j.parts[qi], koko.Partial{Res: sum})
			}
			pr := &j.progress[qi]
			pr.ShardsDone++
			if sum != nil {
				pr.Candidates += sum.Candidates
				pr.Matched += sum.Matched
			}
			j.mu.Unlock()
		}
	}
}

// finalize settles the job's terminal state and starts its retention clock.
func (m *Manager) finalize(j *job) {
	j.mu.Lock()
	switch {
	case j.state == StateCancelled || j.ctx.Err() != nil:
		j.state = StateCancelled
	case j.err != "":
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	j.finished = time.Now().UTC()
	if m.ttl > 0 {
		j.expires = j.finished.Add(m.ttl)
	}
	// Drop the pinned engine and parsed queries: status/results reads only
	// need progress and parts, and holding the engine would keep a whole
	// superseded generation (indices + corpus) alive for the retention
	// window after a hot reload.
	j.eng = nil
	j.parsed = nil
	for _, pr := range j.progress {
		j.tuples += pr.Tuples
	}
	state := j.state
	j.mu.Unlock()
	j.cancel() // release the context's resources

	m.mu.Lock()
	switch state {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
	// A concurrent DELETE may have removed the record between the state
	// flip above and here; only a job still in the map joins the retention
	// accounting.
	if _, ok := m.jobs[j.id]; ok {
		j.accounted = true
		m.retained += j.tuples
		m.evictRetainedLocked(j.id)
	}
	m.mu.Unlock()
}

// evictRetainedLocked purges oldest-finished jobs until the total retained
// tuple count fits the budget — the jobs-side counterpart of the result
// cache's tuple bound, so sustained batch submission cannot pin unbounded
// result tables for the TTL window. The job that just finished (keep) is
// never evicted, whatever its size: results must be fetchable at least
// until a newer job finishes, so the budget is soft by one job rather than
// a silent discard of work the server already paid for. Caller holds m.mu.
func (m *Manager) evictRetainedLocked(keep string) {
	if m.maxTuples <= 0 || m.retained <= m.maxTuples {
		return
	}
	type done struct {
		id       string
		finished time.Time
		tuples   int
	}
	var finished []done
	for id, j := range m.jobs {
		if !j.accounted || id == keep {
			continue
		}
		j.mu.Lock()
		finished = append(finished, done{id: id, finished: j.finished, tuples: j.tuples})
		j.mu.Unlock()
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].finished.Before(finished[k].finished) })
	for _, d := range finished {
		if m.retained <= m.maxTuples {
			return
		}
		delete(m.jobs, d.id)
		m.retained -= d.tuples
	}
}

// Get returns a job's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return j.status(), nil
}

// Results returns the job's merged result prefix: for every query, the
// completed shards merged in document order. For a done job this is exactly
// the batch's final answer; for a running or cancelled one it is the
// consistent prefix available so far.
func (m *Manager) Results(id string) (Results, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Results{}, err
	}
	// Snapshot under the lock is O(shards) — slice-of-Partial copies and
	// progress counters. The O(tuples) merge happens outside j.mu so a
	// client polling results on a large running job never stalls the
	// executor's progress appends. Stored partials are immutable once
	// appended, so the copied prefix stays consistent.
	j.mu.Lock()
	out := Results{ID: j.id, State: j.state, Corpus: j.spec.Corpus, Generation: j.gen, Error: j.err}
	progress := append([]QueryProgress(nil), j.progress...)
	parts := make([][]koko.Partial, len(j.parts))
	for qi := range j.parts {
		parts[qi] = append([]koko.Partial(nil), j.parts[qi]...)
	}
	j.mu.Unlock()
	for qi := range parts {
		pr := progress[qi]
		out.Queries = append(out.Queries, QueryResults{
			Index:       qi,
			Canonical:   pr.Canonical,
			Complete:    pr.ShardsDone == pr.ShardsTotal,
			ShardsTotal: pr.ShardsTotal,
			ShardsDone:  pr.ShardsDone,
			Result:      koko.MergePartials(parts[qi]),
		})
	}
	return out, nil
}

// Cancel stops an active job (its context is cancelled, which aborts the
// in-flight shard evaluation between documents) or deletes a finished one.
// It returns the job's resulting status; deleted jobs report their terminal
// state one last time.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	j.mu.Lock()
	if j.state.Terminal() {
		st := j.statusLocked()
		j.mu.Unlock()
		m.mu.Lock()
		if _, ok := m.jobs[id]; ok {
			delete(m.jobs, id)
			if j.accounted {
				// Re-read tuples now: accounted was set under m.mu after
				// finalize fixed j.tuples, so a snapshot taken before this
				// block could predate it and corrupt the retained total.
				j.mu.Lock()
				m.retained -= j.tuples
				j.mu.Unlock()
			}
		}
		m.mu.Unlock()
		return st, nil
	}
	j.state = StateCancelled
	j.mu.Unlock()
	j.cancel()
	return j.status(), nil
}

// List returns all retained jobs' statuses, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	m.sweepLocked(time.Now())
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(js))
	for _, j := range js {
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].CreatedAt.After(out[k].CreatedAt) })
	return out
}

// Metrics returns the manager's counter-and-gauge snapshot.
func (m *Manager) Metrics() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	snap := Snapshot{
		Submitted:      m.submitted,
		Done:           m.done,
		Failed:         m.failed,
		Cancelled:      m.cancelled,
		RetainedTuples: m.retained,
	}
	// Tally job states under the same m.mu section as the counters above
	// (m.mu → j.mu is the uniform order) so the snapshot's halves cannot
	// disagree — e.g. a job counted Retained whose tuples a concurrent
	// finalize had not yet added to RetainedTuples.
	for _, j := range m.jobs {
		st := j.status()
		switch st.State {
		case StatePending:
			snap.Pending++
		case StateRunning:
			snap.Running++
		default:
			snap.Retained++
		}
		if !st.State.Terminal() {
			snap.QueueShards += st.ShardsTotal - st.ShardsDone
		}
	}
	return snap
}

// Drain stops accepting new jobs and waits for every active one to finish,
// polling until done or ctx expires. Part of graceful shutdown: running
// batches complete (their results remain fetchable until the process
// exits), new submissions fail with ErrDraining. When ctx expires first,
// still-active jobs are cancelled so their shard evaluations stop promptly,
// and ctx.Err() is returned.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		if m.activeCount() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			m.mu.Lock()
			js := make([]*job, 0, len(m.jobs))
			for _, j := range m.jobs {
				js = append(js, j)
			}
			m.mu.Unlock()
			for _, j := range js {
				if !j.snapshotState().Terminal() {
					j.cancel()
				}
			}
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// activeCount reports how many jobs are pending or running.
func (m *Manager) activeCount() int {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	active := 0
	for _, j := range js {
		if !j.snapshotState().Terminal() {
			active++
		}
	}
	return active
}

// lookup resolves an id, sweeping expired jobs first so a purged job is
// indistinguishable from one that never existed.
func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	return j, nil
}

// sweepLocked drops finished jobs past their retention deadline. Caller
// holds m.mu.
func (m *Manager) sweepLocked(now time.Time) {
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.Terminal() && !j.expires.IsZero() && now.After(j.expires)
		tuples := j.tuples
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
			if j.accounted {
				m.retained -= tuples
			}
		}
	}
}

func (j *job) snapshotState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() Status {
	st := Status{
		ID:         j.id,
		State:      j.state,
		Corpus:     j.spec.Corpus,
		Generation: j.gen,
		Shards:     j.shards,
		Queries:    append([]QueryProgress(nil), j.progress...),
		Error:      j.err,
		CreatedAt:  j.created,
		StartedAt:  j.started,
		FinishedAt: j.finished,
	}
	for _, pr := range j.progress {
		st.ShardsTotal += pr.ShardsTotal
		st.ShardsDone += pr.ShardsDone
	}
	return st
}
