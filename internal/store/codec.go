package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Order-preserving key encoding and compact row encoding.
//
// Composite index keys must compare bytewise in the same order as their
// column tuples compare logically. Integers are encoded big-endian with the
// sign bit flipped; strings are escaped (0x00 → 0x00 0xFF) and terminated
// with 0x00 0x01 so that a shorter string sorts before its extensions and no
// string is a bytewise prefix of a sibling component.

// AppendKeyInt appends an order-preserving encoding of v.
func AppendKeyInt(dst []byte, v int64) []byte {
	u := uint64(v) ^ (1 << 63)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(dst, buf[:]...)
}

// DecodeKeyInt decodes an integer written by AppendKeyInt and returns the
// remaining bytes.
func DecodeKeyInt(src []byte) (int64, []byte) {
	u := binary.BigEndian.Uint64(src[:8])
	return int64(u ^ (1 << 63)), src[8:]
}

// AppendKeyString appends an order-preserving encoding of s.
func AppendKeyString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		dst = append(dst, c)
		if c == 0x00 {
			dst = append(dst, 0xFF)
		}
	}
	return append(dst, 0x00, 0x01)
}

// DecodeKeyString decodes a string written by AppendKeyString and returns the
// remaining bytes.
func DecodeKeyString(src []byte) (string, []byte) {
	var out []byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c != 0x00 {
			out = append(out, c)
			continue
		}
		if i+1 < len(src) && src[i+1] == 0xFF {
			out = append(out, 0x00)
			i++
			continue
		}
		return string(out), src[i+2:]
	}
	return string(out), nil
}

// Row values are int64 or string.

// ColType is a column type tag.
type ColType byte

const (
	ColInt ColType = iota
	ColString
)

// Value is a dynamically typed cell.
type Value struct {
	T ColType
	I int64
	S string
}

// IntVal wraps an int64.
func IntVal(v int64) Value { return Value{T: ColInt, I: v} }

// StrVal wraps a string.
func StrVal(s string) Value { return Value{T: ColString, S: s} }

func (v Value) String() string {
	if v.T == ColInt {
		return fmt.Sprintf("%d", v.I)
	}
	return v.S
}

// appendRow encodes a row compactly (varint ints, length-prefixed strings).
func appendRow(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.T))
		switch v.T {
		case ColInt:
			dst = binary.AppendVarint(dst, v.I)
		case ColString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// decodeRow decodes a row written by appendRow and returns the remaining
// bytes.
func decodeRow(src []byte) ([]Value, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 || n > math.MaxInt32 {
		return nil, nil, fmt.Errorf("store: corrupt row header")
	}
	src = src[k:]
	row := make([]Value, n)
	for i := range row {
		if len(src) == 0 {
			return nil, nil, fmt.Errorf("store: truncated row")
		}
		t := ColType(src[0])
		src = src[1:]
		switch t {
		case ColInt:
			v, k := binary.Varint(src)
			if k <= 0 {
				return nil, nil, fmt.Errorf("store: corrupt int")
			}
			src = src[k:]
			row[i] = IntVal(v)
		case ColString:
			l, k := binary.Uvarint(src)
			if k <= 0 || uint64(len(src)-k) < l {
				return nil, nil, fmt.Errorf("store: corrupt string")
			}
			row[i] = StrVal(string(src[k : k+int(l)]))
			src = src[k+int(l):]
		default:
			return nil, nil, fmt.Errorf("store: unknown column type %d", t)
		}
	}
	return row, src, nil
}
