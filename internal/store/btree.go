package store

import "bytes"

// BTree is an in-memory B+tree over []byte keys with []byte values. Keys are
// unique; Insert overwrites. Leaves are linked for fast range scans. The
// fanout is fixed; with order 64 a tree of a few million keys is 3–4 levels
// deep, matching the behaviour of the database B-trees the paper relies on.
type BTree struct {
	root   node
	size   int
	height int
}

const btreeOrder = 64 // max keys per node

type node interface {
	isLeaf() bool
}

type leafNode struct {
	keys [][]byte
	vals [][]byte
	next *leafNode
}

type innerNode struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]byte
	children []node
}

func (*leafNode) isLeaf() bool  { return true }
func (*innerNode) isLeaf() bool { return false }

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &leafNode{}, height: 1}
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// Height returns the current tree height (levels).
func (t *BTree) Height() int { return t.height }

// Get returns the value for key and whether it exists.
func (t *BTree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		n = in.children[childIndex(in.keys, key)]
	}
	lf := n.(*leafNode)
	i := lowerBound(lf.keys, key)
	if i < len(lf.keys) && bytes.Equal(lf.keys[i], key) {
		return lf.vals[i], true
	}
	return nil, false
}

// Insert sets key to val, overwriting any existing value. The key and value
// slices are retained; callers must not mutate them afterwards.
func (t *BTree) Insert(key, val []byte) {
	newKey, newChild := t.insert(t.root, key, val)
	if newChild != nil {
		t.root = &innerNode{
			keys:     [][]byte{newKey},
			children: []node{t.root, newChild},
		}
		t.height++
	}
}

// insert recursively inserts and returns a (separatorKey, rightSibling) pair
// when the child split, or (nil, nil).
func (t *BTree) insert(n node, key, val []byte) ([]byte, node) {
	if n.isLeaf() {
		lf := n.(*leafNode)
		i := lowerBound(lf.keys, key)
		if i < len(lf.keys) && bytes.Equal(lf.keys[i], key) {
			lf.vals[i] = val
			return nil, nil
		}
		lf.keys = insertAt(lf.keys, i, key)
		lf.vals = insertAt(lf.vals, i, val)
		t.size++
		if len(lf.keys) <= btreeOrder {
			return nil, nil
		}
		mid := len(lf.keys) / 2
		right := &leafNode{
			keys: append([][]byte(nil), lf.keys[mid:]...),
			vals: append([][]byte(nil), lf.vals[mid:]...),
			next: lf.next,
		}
		lf.keys = lf.keys[:mid]
		lf.vals = lf.vals[:mid]
		lf.next = right
		return right.keys[0], right
	}
	in := n.(*innerNode)
	ci := childIndex(in.keys, key)
	sepKey, sibling := t.insert(in.children[ci], key, val)
	if sibling == nil {
		return nil, nil
	}
	in.keys = insertAt(in.keys, ci, sepKey)
	in.children = insertAt(in.children, ci+1, sibling)
	if len(in.keys) <= btreeOrder {
		return nil, nil
	}
	mid := len(in.keys) / 2
	up := in.keys[mid]
	right := &innerNode{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return up, right
}

// Delete removes key and reports whether it was present. Underflow is not
// rebalanced (the workloads here are build-once / read-many, like the
// paper's), but deleted keys become invisible immediately.
func (t *BTree) Delete(key []byte) bool {
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		n = in.children[childIndex(in.keys, key)]
	}
	lf := n.(*leafNode)
	i := lowerBound(lf.keys, key)
	if i < len(lf.keys) && bytes.Equal(lf.keys[i], key) {
		lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
		lf.vals = append(lf.vals[:i], lf.vals[i+1:]...)
		t.size--
		return true
	}
	return false
}

// Iter is a forward iterator positioned at a key/value pair.
type Iter struct {
	leaf *leafNode
	idx  int
}

// Seek returns an iterator positioned at the first key >= key.
func (t *BTree) Seek(key []byte) Iter {
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		n = in.children[childIndex(in.keys, key)]
	}
	lf := n.(*leafNode)
	i := lowerBound(lf.keys, key)
	it := Iter{leaf: lf, idx: i}
	it.skipExhausted()
	return it
}

// Min returns an iterator at the smallest key.
func (t *BTree) Min() Iter { return t.Seek(nil) }

// Valid reports whether the iterator is positioned at a pair.
func (it *Iter) Valid() bool { return it.leaf != nil && it.idx < len(it.leaf.keys) }

// Key returns the current key. Valid() must be true.
func (it *Iter) Key() []byte { return it.leaf.keys[it.idx] }

// Value returns the current value. Valid() must be true.
func (it *Iter) Value() []byte { return it.leaf.vals[it.idx] }

// Next advances the iterator.
func (it *Iter) Next() {
	it.idx++
	it.skipExhausted()
}

func (it *Iter) skipExhausted() {
	for it.leaf != nil && it.idx >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.idx = 0
	}
}

// ScanPrefix calls fn for every key with the given prefix, in order. fn may
// return false to stop early.
func (t *BTree) ScanPrefix(prefix []byte, fn func(key, val []byte) bool) {
	for it := t.Seek(prefix); it.Valid(); it.Next() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			return
		}
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}

// ScanRange calls fn for every key in [lo, hi) in order. A nil hi means +inf.
func (t *BTree) ScanRange(lo, hi []byte, fn func(key, val []byte) bool) {
	for it := t.Seek(lo); it.Valid(); it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			return
		}
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}

// childIndex returns the index of the child to descend into for key.
func childIndex(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index whose key >= key.
func lowerBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
