package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type ColType
}

// Table is a heap of rows with optional B+tree secondary indexes. Rows get
// monotonically increasing row ids; indexes map encoded column prefixes to
// row ids.
type Table struct {
	Name    string
	Columns []Column
	rows    [][]Value
	indexes map[string]*tableIndex
}

type tableIndex struct {
	name string
	cols []int // column positions forming the key
	tree *BTree
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, cols ...Column) *Table {
	return &Table{Name: name, Columns: cols, indexes: map[string]*tableIndex{}}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// CreateIndex builds a secondary index over the named columns. Existing rows
// are indexed immediately.
func (t *Table) CreateIndex(name string, colNames ...string) error {
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		p := t.colPos(cn)
		if p < 0 {
			return fmt.Errorf("store: table %s has no column %q", t.Name, cn)
		}
		cols[i] = p
	}
	ix := &tableIndex{name: name, cols: cols, tree: NewBTree()}
	for rid, row := range t.rows {
		ix.tree.Insert(ix.key(row, rid), nil)
	}
	t.indexes[name] = ix
	return nil
}

func (t *Table) colPos(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// key encodes the index columns of row followed by the row id (to keep keys
// unique under duplicate column values).
func (ix *tableIndex) key(row []Value, rid int) []byte {
	var k []byte
	for _, c := range ix.cols {
		k = appendKeyValue(k, row[c])
	}
	return AppendKeyInt(k, int64(rid))
}

func appendKeyValue(dst []byte, v Value) []byte {
	if v.T == ColInt {
		return AppendKeyInt(dst, v.I)
	}
	return AppendKeyString(dst, v.S)
}

// Insert appends a row and maintains all indexes. The row must match the
// schema.
func (t *Table) Insert(row ...Value) (int, error) {
	if len(row) != len(t.Columns) {
		return 0, fmt.Errorf("store: table %s: %d values for %d columns", t.Name, len(row), len(t.Columns))
	}
	for i, v := range row {
		if v.T != t.Columns[i].Type {
			return 0, fmt.Errorf("store: table %s column %s: wrong type", t.Name, t.Columns[i].Name)
		}
	}
	rid := len(t.rows)
	t.rows = append(t.rows, row)
	for _, ix := range t.indexes {
		ix.tree.Insert(ix.key(row, rid), nil)
	}
	return rid, nil
}

// MustInsert is Insert that panics on schema mismatch (builder code paths).
func (t *Table) MustInsert(row ...Value) int {
	rid, err := t.Insert(row...)
	if err != nil {
		panic(err)
	}
	return rid
}

// Row returns the row with the given id.
func (t *Table) Row(rid int) []Value { return t.rows[rid] }

// Scan calls fn for every row in insertion order; fn may return false to
// stop.
func (t *Table) Scan(fn func(rid int, row []Value) bool) {
	for rid, row := range t.rows {
		if !fn(rid, row) {
			return
		}
	}
}

// LookupPrefix scans an index for rows whose leading index columns equal the
// given values, in index order.
func (t *Table) LookupPrefix(indexName string, fn func(rid int, row []Value) bool, vals ...Value) error {
	ix, ok := t.indexes[indexName]
	if !ok {
		return fmt.Errorf("store: table %s has no index %q", t.Name, indexName)
	}
	if len(vals) > len(ix.cols) {
		return fmt.Errorf("store: index %s has %d columns, got %d lookup values", indexName, len(ix.cols), len(vals))
	}
	var prefix []byte
	for _, v := range vals {
		prefix = appendKeyValue(prefix, v)
	}
	ix.tree.ScanPrefix(prefix, func(key, _ []byte) bool {
		// Row id is the trailing 8 bytes.
		rid, _ := DecodeKeyInt(key[len(key)-8:])
		return fn(int(rid), t.rows[rid])
	})
	return nil
}

// IndexHeight returns the B+tree height of the named index (0 if absent).
// Used by experiments to report index shape.
func (t *Table) IndexHeight(indexName string) int {
	if ix, ok := t.indexes[indexName]; ok {
		return ix.tree.Height()
	}
	return 0
}

// SizeBytes estimates the serialized footprint of the table including its
// indexes (key bytes). This is the figure the index-size experiment reports.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, row := range t.rows {
		total += int64(len(appendRow(nil, row)))
	}
	for _, ix := range t.indexes {
		for it := ix.tree.Min(); it.Valid(); it.Next() {
			total += int64(len(it.Key()))
		}
	}
	return total
}

// DB is a named collection of tables with whole-database persistence.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create adds a table; it replaces any existing table with the same name.
func (db *DB) Create(name string, cols ...Column) *Table {
	t := NewTable(name, cols...)
	db.tables[name] = t
	return t
}

// Table returns the named table or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SizeBytes sums the serialized footprint of all tables.
func (db *DB) SizeBytes() int64 {
	var total int64
	for _, t := range db.tables {
		total += t.SizeBytes()
	}
	return total
}

const dbMagic = "KOKODB1\n"

// Save writes the database to a file. Indexes are persisted as definitions
// and rebuilt on load (they are derived data).
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := db.write(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (db *DB) write(w io.Writer) error {
	if _, err := io.WriteString(w, dbMagic); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(db.tables)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, name := range db.TableNames() {
		t := db.tables[name]
		var hdr []byte
		hdr = binary.AppendUvarint(hdr, uint64(len(t.Name)))
		hdr = append(hdr, t.Name...)
		hdr = binary.AppendUvarint(hdr, uint64(len(t.Columns)))
		for _, c := range t.Columns {
			hdr = binary.AppendUvarint(hdr, uint64(len(c.Name)))
			hdr = append(hdr, c.Name...)
			hdr = append(hdr, byte(c.Type))
		}
		// Index definitions.
		ixNames := make([]string, 0, len(t.indexes))
		for n := range t.indexes {
			ixNames = append(ixNames, n)
		}
		sort.Strings(ixNames)
		hdr = binary.AppendUvarint(hdr, uint64(len(ixNames)))
		for _, n := range ixNames {
			ix := t.indexes[n]
			hdr = binary.AppendUvarint(hdr, uint64(len(n)))
			hdr = append(hdr, n...)
			hdr = binary.AppendUvarint(hdr, uint64(len(ix.cols)))
			for _, c := range ix.cols {
				hdr = binary.AppendUvarint(hdr, uint64(c))
			}
		}
		hdr = binary.AppendUvarint(hdr, uint64(len(t.rows)))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		var rowBuf []byte
		for _, row := range t.rows {
			rowBuf = appendRow(rowBuf[:0], row)
			var lenBuf []byte
			lenBuf = binary.AppendUvarint(lenBuf, uint64(len(rowBuf)))
			if _, err := w.Write(lenBuf); err != nil {
				return err
			}
			if _, err := w.Write(rowBuf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a database written by Save and rebuilds all indexes.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(dbMagic) || string(data[:len(dbMagic)]) != dbMagic {
		return nil, fmt.Errorf("store: %s: not a KOKO database", path)
	}
	src := data[len(dbMagic):]
	nTables, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("store: corrupt header")
	}
	src = src[k:]
	db := NewDB()
	for ti := uint64(0); ti < nTables; ti++ {
		name, rest, err := readString(src)
		if err != nil {
			return nil, err
		}
		src = rest
		nCols, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("store: corrupt table %s", name)
		}
		src = src[k:]
		cols := make([]Column, nCols)
		for i := range cols {
			cn, rest, err := readString(src)
			if err != nil {
				return nil, err
			}
			src = rest
			if len(src) == 0 {
				return nil, fmt.Errorf("store: truncated column")
			}
			cols[i] = Column{Name: cn, Type: ColType(src[0])}
			src = src[1:]
		}
		t := db.Create(name, cols...)
		nIx, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("store: corrupt index count")
		}
		src = src[k:]
		type ixDef struct {
			name string
			cols []int
		}
		defs := make([]ixDef, nIx)
		for i := range defs {
			in, rest, err := readString(src)
			if err != nil {
				return nil, err
			}
			src = rest
			nc, k := binary.Uvarint(src)
			if k <= 0 {
				return nil, fmt.Errorf("store: corrupt index def")
			}
			src = src[k:]
			ixCols := make([]int, nc)
			for j := range ixCols {
				c, k := binary.Uvarint(src)
				if k <= 0 {
					return nil, fmt.Errorf("store: corrupt index col")
				}
				src = src[k:]
				ixCols[j] = int(c)
			}
			defs[i] = ixDef{name: in, cols: ixCols}
		}
		nRows, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("store: corrupt row count")
		}
		src = src[k:]
		t.rows = make([][]Value, 0, nRows)
		for r := uint64(0); r < nRows; r++ {
			rl, k := binary.Uvarint(src)
			if k <= 0 || uint64(len(src)-k) < rl {
				return nil, fmt.Errorf("store: corrupt row length")
			}
			src = src[k:]
			row, _, err := decodeRow(src[:rl])
			if err != nil {
				return nil, err
			}
			src = src[rl:]
			t.rows = append(t.rows, row)
		}
		for _, d := range defs {
			colNames := make([]string, len(d.cols))
			for i, c := range d.cols {
				colNames[i] = t.Columns[c].Name
			}
			if err := t.CreateIndex(d.name, colNames...); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func readString(src []byte) (string, []byte, error) {
	l, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < l {
		return "", nil, fmt.Errorf("store: corrupt string")
	}
	return string(src[k : k+int(l)]), src[k+int(l):], nil
}
