// Package store is the storage substrate of the KOKO reproduction.
//
// The paper stores parsed text and all indices in PostgreSQL: the inverted
// word/entity indices as flat tables W and E with B-tree indexes, and the
// hierarchy indices as closure tables PL and POS (§6.2.1). This package
// provides the embedded equivalent: typed heap tables with B+tree secondary
// indexes over order-preserving key encodings, plus whole-database binary
// persistence. Every indexing scheme in the reproduction — KOKO's multi-index
// and the INVERTED / ADVINVERTED / SUBTREE baselines — stores its tables
// here, so that lookup-time comparisons measure index organization rather
// than storage-engine differences, exactly as the paper's shared-Postgres
// setup does.
package store
