package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeBasic(t *testing.T) {
	tr := NewBTree()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("empty tree returned a value")
	}
	tr.Insert([]byte("b"), []byte("2"))
	tr.Insert([]byte("a"), []byte("1"))
	tr.Insert([]byte("c"), []byte("3"))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for k, v := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, ok := tr.Get([]byte(k))
		if !ok || string(got) != v {
			t.Errorf("Get(%q) = %q,%v", k, got, ok)
		}
	}
	tr.Insert([]byte("b"), []byte("2x"))
	if got, _ := tr.Get([]byte("b")); string(got) != "2x" {
		t.Errorf("overwrite failed: %q", got)
	}
	if tr.Len() != 3 {
		t.Errorf("Len after overwrite = %d", tr.Len())
	}
}

func TestBTreeLargeOrdered(t *testing.T) {
	tr := NewBTree()
	const n = 20000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key%08d", i))
		tr.Insert(key, []byte(fmt.Sprintf("v%d", i)))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected splits", tr.Height())
	}
	// Full in-order scan.
	var prev []byte
	count := 0
	for it := tr.Min(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("keys out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("scanned %d keys, want %d", count, n)
	}
}

func TestBTreeRandomVsMap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := NewBTree()
	ref := map[string]string{}
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("k%06d", r.Intn(10000))
		v := fmt.Sprintf("v%d", i)
		tr.Insert([]byte(k), []byte(v))
		ref[k] = v
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q,%v want %q", k, got, ok, v)
		}
	}
	// Ordered iteration must visit exactly the reference keys in sorted order.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	for it := tr.Min(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("iter %d: %q, want %q", i, it.Key(), keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterated %d, want %d", i, len(keys))
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 1000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete([]byte(fmt.Sprintf("k%04d", i))) {
			t.Fatalf("delete k%04d failed", i)
		}
	}
	if tr.Delete([]byte("k0000")) {
		t.Error("double delete succeeded")
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get([]byte(fmt.Sprintf("k%04d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get k%04d = %v, want %v", i, ok, want)
		}
	}
}

func TestBTreeSeekAndRange(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 100; i += 2 {
		tr.Insert([]byte(fmt.Sprintf("k%02d", i)), nil)
	}
	it := tr.Seek([]byte("k51"))
	if !it.Valid() || string(it.Key()) != "k52" {
		t.Errorf("Seek(k51) = %q", it.Key())
	}
	var got []string
	tr.ScanRange([]byte("k10"), []byte("k20"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"k10", "k12", "k14", "k16", "k18"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ScanRange = %v, want %v", got, want)
	}
	got = nil
	tr.ScanPrefix([]byte("k1"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ScanPrefix = %v, want %v", got, want)
	}
}

// TestBTreeQuick is a property test: a B+tree behaves like a sorted map for
// arbitrary insert sequences.
func TestBTreeQuick(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := NewBTree()
		ref := map[string][]byte{}
		for i, k := range keys {
			v := []byte(fmt.Sprintf("%d", i))
			kc := append([]byte(nil), k...)
			tr.Insert(kc, v)
			ref[string(k)] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get([]byte(k))
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		// In-order.
		var prev []byte
		first := true
		okOrder := true
		for it := tr.Min(); it.Valid(); it.Next() {
			if !first && bytes.Compare(prev, it.Key()) >= 0 {
				okOrder = false
			}
			prev = append(prev[:0], it.Key()...)
			first = false
		}
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrder(t *testing.T) {
	// Integer ordering must be preserved, including negatives.
	ints := []int64{-1 << 62, -100, -1, 0, 1, 42, 1 << 40}
	var prev []byte
	for i, v := range ints {
		cur := AppendKeyInt(nil, v)
		if i > 0 && bytes.Compare(prev, cur) >= 0 {
			t.Errorf("int key order broken at %d", v)
		}
		d, rest := DecodeKeyInt(cur)
		if d != v || len(rest) != 0 {
			t.Errorf("roundtrip %d -> %d", v, d)
		}
		prev = cur
	}
	// String ordering, including embedded NULs and prefixes.
	strs := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	prev = nil
	for i, s := range strs {
		cur := AppendKeyString(nil, s)
		if i > 0 && bytes.Compare(prev, cur) >= 0 {
			t.Errorf("string key order broken at %q", s)
		}
		d, rest := DecodeKeyString(cur)
		if d != s || len(rest) != 0 {
			t.Errorf("roundtrip %q -> %q (rest %d)", s, d, len(rest))
		}
		prev = cur
	}
	// Composite keys: (s, i) tuples compare lexicographically.
	k1 := AppendKeyInt(AppendKeyString(nil, "ate"), 5)
	k2 := AppendKeyInt(AppendKeyString(nil, "ate"), 6)
	k3 := AppendKeyInt(AppendKeyString(nil, "atea"), 0)
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Error("composite key order broken")
	}
}

func TestKeyEncodingQuick(t *testing.T) {
	f := func(a, b string, x, y int64) bool {
		ka := AppendKeyInt(AppendKeyString(nil, a), x)
		kb := AppendKeyInt(AppendKeyString(nil, b), y)
		cmp := bytes.Compare(ka, kb)
		var want int
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		case x < y:
			want = -1
		case x > y:
			want = 1
		}
		return cmp == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
