package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func wordTable() *Table {
	t := NewTable("W",
		Column{"word", ColString},
		Column{"x", ColInt},
		Column{"y", ColInt},
	)
	return t
}

func TestTableInsertScanLookup(t *testing.T) {
	tb := wordTable()
	if err := tb.CreateIndex("by_word", "word"); err != nil {
		t.Fatal(err)
	}
	tb.MustInsert(StrVal("ate"), IntVal(0), IntVal(1))
	tb.MustInsert(StrVal("delicious"), IntVal(0), IntVal(9))
	tb.MustInsert(StrVal("ate"), IntVal(1), IntVal(1))
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var got [][]Value
	if err := tb.LookupPrefix("by_word", func(rid int, row []Value) bool {
		got = append(got, row)
		return true
	}, StrVal("ate")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("lookup ate: %d rows, want 2", len(got))
	}
	// Index order: insertion order within equal keys (rid tiebreak).
	if got[0][1].I != 0 || got[1][1].I != 1 {
		t.Errorf("rows out of order: %v", got)
	}
	// Prefix must not match other words.
	count := 0
	_ = tb.LookupPrefix("by_word", func(int, []Value) bool { count++; return true }, StrVal("at"))
	if count != 0 {
		t.Errorf("prefix 'at' matched %d rows, want 0 (exact component match)", count)
	}
}

func TestTableCompositeIndex(t *testing.T) {
	tb := NewTable("P",
		Column{"label", ColString},
		Column{"sid", ColInt},
		Column{"tid", ColInt},
	)
	if err := tb.CreateIndex("by_label_sid", "label", "sid"); err != nil {
		t.Fatal(err)
	}
	for sid := int64(0); sid < 5; sid++ {
		tb.MustInsert(StrVal("dobj"), IntVal(sid), IntVal(sid*2))
		tb.MustInsert(StrVal("nsubj"), IntVal(sid), IntVal(sid*3))
	}
	var tids []int64
	_ = tb.LookupPrefix("by_label_sid", func(rid int, row []Value) bool {
		tids = append(tids, row[2].I)
		return true
	}, StrVal("dobj"), IntVal(3))
	if !reflect.DeepEqual(tids, []int64{6}) {
		t.Errorf("composite lookup = %v", tids)
	}
	tids = nil
	_ = tb.LookupPrefix("by_label_sid", func(rid int, row []Value) bool {
		tids = append(tids, row[2].I)
		return true
	}, StrVal("dobj"))
	if !reflect.DeepEqual(tids, []int64{0, 2, 4, 6, 8}) {
		t.Errorf("prefix lookup = %v", tids)
	}
}

func TestTableErrors(t *testing.T) {
	tb := wordTable()
	if _, err := tb.Insert(StrVal("x")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := tb.Insert(IntVal(1), IntVal(2), IntVal(3)); err == nil {
		t.Error("wrong type accepted")
	}
	if err := tb.CreateIndex("bad", "nope"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := tb.LookupPrefix("missing", func(int, []Value) bool { return true }); err == nil {
		t.Error("lookup on missing index accepted")
	}
}

func TestDBPersistRoundtrip(t *testing.T) {
	db := NewDB()
	w := db.Create("W",
		Column{"word", ColString},
		Column{"x", ColInt},
	)
	if err := w.CreateIndex("by_word", "word"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		w.MustInsert(StrVal("w"+string(rune('a'+i%26))), IntVal(i))
	}
	e := db.Create("E", Column{"entity", ColString}, Column{"sid", ColInt})
	e.MustInsert(StrVal("grocery store"), IntVal(1))
	e.MustInsert(StrVal("chocolate ice cream"), IntVal(0))

	path := filepath.Join(t.TempDir(), "test.kokodb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TableNames(), []string{"E", "W"}) {
		t.Fatalf("tables = %v", got.TableNames())
	}
	gw := got.Table("W")
	if gw.NumRows() != 1000 {
		t.Fatalf("W rows = %d", gw.NumRows())
	}
	// Index must have been rebuilt.
	count := 0
	if err := gw.LookupPrefix("by_word", func(rid int, row []Value) bool {
		count++
		return true
	}, StrVal("wa")); err != nil {
		t.Fatal(err)
	}
	if count != len(selectMod26(1000, 0)) {
		t.Errorf("wa count = %d", count)
	}
	ge := got.Table("E")
	if ge.Row(1)[0].S != "chocolate ice cream" {
		t.Errorf("E row 1 = %v", ge.Row(1))
	}
	if db.SizeBytes() != got.SizeBytes() {
		t.Errorf("size mismatch: %d vs %d", db.SizeBytes(), got.SizeBytes())
	}
}

func selectMod26(n int, rem int64) []int64 {
	var out []int64
	for i := int64(0); i < int64(n); i++ {
		if i%26 == rem {
			out = append(out, i)
		}
	}
	return out
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := writeFile(path, []byte("not a database")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("garbage accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
