package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// The hot-path perf snapshot (kokobench -exp hotpath): programmatic
// testing.Benchmark runs over the same HappyDB workload as the engine
// package's BenchmarkExtractHotPath / BenchmarkExtractSatisfying micro-
// benchmarks, rendered as BENCH_engine.json so every PR leaves a
// comparable ns/op–B/op–allocs/op trajectory behind.

// HotPathCorpusSents / HotPathCorpusSeed pin the workload corpus. Keep in
// sync with the engine package's bench_test.go.
const (
	HotPathCorpusSents = 1000
	HotPathCorpusSeed  = 42
)

// HotPathExtractQuery exercises the extract hot path: two node loops, a
// subtree derivation, and a horizontal condition whose two elastic spans
// the skip plan eliminates.
const HotPathExtractQuery = `
	extract d:Str, s:Str from "happydb" if (
	/ROOT:{ v = //verb, o = v/dobj, d = (o.subtree), s = "i" + ^ + v + ^ + o })`

// HotPathSatisfyingQuery adds the aggregator-backed satisfying path.
const HotPathSatisfyingQuery = `
	extract o:Str from "happydb" if (
	/ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
	satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`

// HotPathJoinQueries exercise the three DPLI join shapes (word-word
// ancestor join, hierarchy⋈word same-token join, final P⋈Q ancestor join);
// the snapshot measures them through Candidates (normalize + DPLI).
var HotPathJoinQueries = []string{
	`extract d:Str from "happydb" if (/ROOT:{ v = //"ate", o = v//"cake", d = (o.subtree) })`,
	`extract d:Str from "happydb" if (/ROOT:{ v = //verb, o = v/dobj[text="cake"], d = (o.subtree) })`,
	`extract d:Str from "happydb" if (/ROOT:{ o = //"ate"/dobj, d = (o.subtree) })`,
}

// BenchPoint is one benchmark's cost profile.
type BenchPoint struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// BenchSnapshot is the BENCH_engine.json document.
type BenchSnapshot struct {
	Workload string       `json:"workload"`
	Note     string       `json:"note"`
	Baseline []BenchPoint `json:"baseline_pr2_seed"`
	Current  []BenchPoint `json:"current"`
	// Plan compares plan-on vs plan-off wall clock per corpus and query
	// shape (see RunPlanBench); refreshed together with the hot-path rows.
	Plan []PlanBenchPoint `json:"plan,omitempty"`
}

// HotPathBaseline pins the pre-refactor (PR 2 seed) numbers, measured on
// the same workload before the slot/merge-join rework, so the snapshot
// always shows the trajectory the refactor has to beat.
var HotPathBaseline = []BenchPoint{
	{Name: "extract_hot_path", NsPerOp: 8591960, BytesPerOp: 3430447, AllocsPerOp: 36040},
	{Name: "extract_satisfying", NsPerOp: 10160778, BytesPerOp: 4124950, AllocsPerOp: 51226},
	{Name: "dpli_candidates", NsPerOp: 1113381, BytesPerOp: 940136, AllocsPerOp: 299},
}

// RunHotPathBench measures the current engine and returns the full
// snapshot.
func RunHotPathBench() *BenchSnapshot {
	c := corpus.GenHappyDB(HotPathCorpusSents, HotPathCorpusSeed)
	ix := index.Build(c)
	eng := engine.New(c, ix, embed.NewModel(), engine.Options{})

	qx := lang.MustParse(HotPathExtractQuery)
	qs := lang.MustParse(HotPathSatisfyingQuery)
	qj := make([]*lang.Query, 0, len(HotPathJoinQueries))
	for _, src := range HotPathJoinQueries {
		qj = append(qj, lang.MustParse(src))
	}

	measure := func(name string, f func(b *testing.B)) BenchPoint {
		r := testing.Benchmark(f)
		return BenchPoint{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	snap := &BenchSnapshot{
		Workload: "GenHappyDB(1000, 42); see internal/experiments/hotpath.go for the query text",
		Note: "refresh with `go run ./cmd/kokobench -exp hotpath > BENCH_engine.json`; " +
			"baseline_pr2_seed is the pre-refactor engine on the identical workload",
		Baseline: HotPathBaseline,
	}
	snap.Current = append(snap.Current,
		measure("extract_hot_path", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(qx); err != nil {
					b.Fatal(err)
				}
			}
		}),
		measure("extract_satisfying", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(qs); err != nil {
					b.Fatal(err)
				}
			}
		}),
		measure("dpli_candidates", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range qj {
					if _, err := eng.Candidates(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
	)
	return snap
}

// FormatHotPath renders the snapshot as indented JSON (the committed
// BENCH_engine.json format).
func FormatHotPath(s *BenchSnapshot) string {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(out) + "\n"
}
