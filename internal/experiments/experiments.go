// Package experiments implements the paper's evaluation section: one
// function per table and figure, each returning structured results the
// benchmark harness (cmd/kokobench, bench_test.go) formats into the same
// rows and series the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/koko/engine"
)

// PRF is a precision/recall/F1 triple.
type PRF struct {
	Precision, Recall, F1 float64
	Extracted, Correct    int
}

// Score computes PRF of an extracted set against a gold set (both
// lowercase).
func Score(extracted map[string]bool, truth map[string]bool) PRF {
	var correct int
	for e := range extracted {
		if truth[e] {
			correct++
		}
	}
	p := PRF{Extracted: len(extracted), Correct: correct}
	if len(extracted) > 0 {
		p.Precision = float64(correct) / float64(len(extracted))
	}
	if len(truth) > 0 {
		p.Recall = float64(correct) / float64(len(truth))
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

func (p PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (%d extracted, %d correct)",
		p.Precision, p.Recall, p.F1, p.Extracted, p.Correct)
}

// valuesOf collects the distinct lowercase first-column values of a result.
func valuesOf(res *engine.Result, col int) map[string]bool {
	out := map[string]bool{}
	for _, t := range res.Tuples {
		if col < len(t.Values) && t.Values[col] != "" {
			out[strings.ToLower(t.Values[col])] = true
		}
	}
	return out
}

// Thresholds is the paper's x-axis sweep (Figures 3-5).
var Thresholds = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Series is one plotted line: a metric per threshold.
type Series struct {
	Name   string
	Points map[float64]PRF
}

// FormatSeries renders series as an aligned table over the thresholds.
func FormatSeries(title string, series []Series, metric func(PRF) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s", title, "threshold")
	for _, t := range Thresholds {
		fmt.Fprintf(&b, "%8.2f", t)
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-14s", s.Name)
		for _, t := range Thresholds {
			p, ok := s.Points[t]
			if !ok {
				// Threshold-independent systems report one flat value.
				for _, v := range s.Points {
					p = v
					break
				}
			}
			fmt.Fprintf(&b, "%8.3f", metric(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// flatSeries builds a threshold-independent series (IKE, CRF lines in the
// figures are horizontal).
func flatSeries(name string, p PRF) Series {
	pts := map[float64]PRF{}
	for _, t := range Thresholds {
		pts[t] = p
	}
	return Series{Name: name, Points: pts}
}

// bestF1 returns the threshold with the highest F1 in a series.
func bestF1(s Series) (float64, PRF) {
	bestT, best := 0.0, PRF{}
	keys := make([]float64, 0, len(s.Points))
	for t := range s.Points {
		keys = append(keys, t)
	}
	sort.Float64s(keys)
	for _, t := range keys {
		if s.Points[t].F1 > best.F1 {
			bestT, best = t, s.Points[t]
		}
	}
	return bestT, best
}
