package experiments

import (
	"context"
	"encoding/json"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/koko"
)

// The shard scaling snapshot (kokobench -exp shard): the HappyDB extract
// workload evaluated by a single engine (K=1) and by sharded engines at
// increasing shard counts, rendered as BENCH_shard.json so the fan-out /
// fan-in overhead and speedup stay measurable across PRs.

// ShardBenchSents sizes the workload corpus: large enough that per-shard
// evaluation dominates coordination, small enough for a CI smoke run.
const ShardBenchSents = 4000

// ShardBenchCounts are the shard counts measured; 1 is the single-engine
// baseline every speedup is relative to.
var ShardBenchCounts = []int{1, 2, 4, 8}

// ShardPoint is one shard count's cost profile.
type ShardPoint struct {
	Shards int `json:"shards"`
	// WallMs is the best-of-iters wall time of one query evaluation.
	WallMs float64 `json:"wall_ms"`
	// SpeedupVs1 is the K=1 wall time divided by this point's wall time.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	Tuples     int     `json:"tuples"`
	Candidates int     `json:"candidates"`
}

// ShardSnapshot is the BENCH_shard.json document.
type ShardSnapshot struct {
	Workload  string       `json:"workload"`
	Note      string       `json:"note"`
	GoMaxProc int          `json:"gomaxprocs"`
	Points    []ShardPoint `json:"points"`
}

// RunShardBench builds the workload corpus once, partitions it at each
// shard count, and measures wall-clock query time (best of iters runs per
// count). Per-shard Workers stays 1 so any speedup is attributable to the
// shard fan-out alone. It also cross-checks that every sharded run returns
// exactly as many tuples as the single-engine baseline.
func RunShardBench(iters int) *ShardSnapshot {
	if iters < 1 {
		iters = 1
	}
	c := koko.WrapCorpus(corpus.GenHappyDB(ShardBenchSents, HotPathCorpusSeed))
	p, err := koko.ParseQuery(HotPathExtractQuery)
	if err != nil {
		panic(err)
	}

	snap := &ShardSnapshot{
		Workload: "GenHappyDB(4000, 42) + the hotpath extract query (see internal/experiments/hotpath.go)",
		Note: "refresh with `go run ./cmd/kokobench -exp shard > BENCH_shard.json`; " +
			"wall_ms is best-of-N wall time of one evaluation, per-shard Workers=1; " +
			"fan-out speedup is bounded by gomaxprocs (a 1-core runner measures coordination overhead only)",
		GoMaxProc: runtime.GOMAXPROCS(0),
	}

	measure := func(run func() (*koko.Result, error)) (float64, *koko.Result) {
		best := time.Duration(0)
		var res *koko.Result
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			r, err := run()
			if err != nil {
				panic(err)
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
			res = r
		}
		return float64(best.Nanoseconds()) / 1e6, res
	}

	var base float64
	var baseTuples int
	for _, k := range ShardBenchCounts {
		var wall float64
		var res *koko.Result
		collect := func(eng koko.Querier) func() (*koko.Result, error) {
			return func() (*koko.Result, error) {
				seq, err := eng.Run(context.Background(), p, nil)
				if err != nil {
					return nil, err
				}
				return seq.Collect()
			}
		}
		if k == 1 {
			wall, res = measure(collect(koko.NewEngine(c, nil)))
			base, baseTuples = wall, len(res.Tuples)
		} else {
			wall, res = measure(collect(koko.NewShardedEngine(c, k, nil)))
			if len(res.Tuples) != baseTuples {
				panic("shard bench: sharded tuple count diverged from single-engine baseline")
			}
		}
		pt := ShardPoint{
			Shards:     k,
			WallMs:     wall,
			Tuples:     len(res.Tuples),
			Candidates: res.Candidates,
		}
		if wall > 0 {
			pt.SpeedupVs1 = base / wall
		}
		snap.Points = append(snap.Points, pt)
	}
	return snap
}

// FormatShardBench renders the snapshot as indented JSON (the committed
// BENCH_shard.json format).
func FormatShardBench(s *ShardSnapshot) string {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(out) + "\n"
}
