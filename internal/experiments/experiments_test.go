package experiments

import (
	"testing"
	"time"

	"repro/internal/corpus"
)

func smallCafes(t *testing.T) *corpus.Labeled {
	t.Helper()
	cfg := corpus.BaristaMagConfig(21)
	return corpus.GenCafes(cfg)
}

// TestFig3Shape: KOKO's best-F1 must beat both IKE and CRF on the cafe
// corpus (the Figure 3 claim: "KOKO performs better than IKE and CRFsuite
// for all thresholds"), and the threshold sweep must trade recall for
// precision.
func TestFig3Shape(t *testing.T) {
	lc := smallCafes(t)
	res, err := RunCafeExtraction("BaristaMag", lc)
	if err != nil {
		t.Fatal(err)
	}
	_, kokoBest := bestF1(res.Koko)
	ikeP := res.IKE.Points[Thresholds[0]]
	crfP := res.CRF.Points[Thresholds[0]]
	if kokoBest.F1 <= ikeP.F1 {
		t.Errorf("Koko best F1 %.3f <= IKE %.3f\n%s", kokoBest.F1, ikeP.F1, FormatQuality(res))
	}
	if kokoBest.F1 <= crfP.F1 {
		t.Errorf("Koko best F1 %.3f <= CRF %.3f\n%s", kokoBest.F1, crfP.F1, FormatQuality(res))
	}
	// Recall must be non-increasing in the threshold; precision
	// non-decreasing over the low-to-mid range (weak evidence drops out).
	lo, hi := res.Koko.Points[0.3], res.Koko.Points[0.9]
	if hi.Recall > lo.Recall {
		t.Errorf("recall increased with threshold: %.3f -> %.3f", lo.Recall, hi.Recall)
	}
	if hi.Precision+1e-9 < lo.Precision {
		t.Errorf("precision decreased with threshold: %.3f -> %.3f", lo.Precision, hi.Precision)
	}
	if kokoBest.F1 < 0.3 {
		t.Errorf("Koko best F1 %.3f implausibly low\n%s", kokoBest.F1, FormatQuality(res))
	}
}

// TestFig4Shape: on tweets the baselines close most of the gap (no
// cross-sentence evidence to aggregate) but KOKO still wins at its best
// threshold.
func TestFig4Shape(t *testing.T) {
	w := corpus.GenWNUT(corpus.WNUTConfig{Tweets: 600, Seed: 22})
	for _, cat := range []string{"teams", "facilities"} {
		res, err := RunTweetExtraction(w, cat)
		if err != nil {
			t.Fatal(err)
		}
		_, kokoBest := bestF1(res.Koko)
		ikeP := res.IKE.Points[Thresholds[0]]
		if kokoBest.F1 < ikeP.F1 {
			t.Errorf("%s: Koko best F1 %.3f < IKE %.3f\n%s", cat, kokoBest.F1, ikeP.F1, FormatQuality(res))
		}
		if kokoBest.F1 < 0.3 {
			t.Errorf("%s: Koko best F1 %.3f implausibly low\n%s", cat, kokoBest.F1, FormatQuality(res))
		}
	}
}

// TestFig5Shape: descriptors must help on the short-article corpus.
func TestFig5Shape(t *testing.T) {
	lc := smallCafes(t)
	with, err := RunCafeExtraction("BaristaMag", lc)
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunKokoNoDescriptors("BaristaMag", lc)
	if err != nil {
		t.Fatal(err)
	}
	_, bw := bestF1(with.Koko)
	_, bo := bestF1(without)
	if bw.F1 < bo.F1 {
		t.Errorf("descriptors hurt: with %.3f, without %.3f", bw.F1, bo.F1)
	}
}

// TestNELLShape: high precision, very low recall (the paper's P=0.7/R=0.05
// regime).
func TestNELLShape(t *testing.T) {
	lc := smallCafes(t)
	res := RunNELL("BaristaMag", lc, 31)
	if res.PRF.Recall > 0.15 {
		t.Errorf("NELL recall %.3f too high (paper: 0.05)", res.PRF.Recall)
	}
	if res.PRF.Extracted > 0 && res.PRF.Precision < 0.5 {
		t.Errorf("NELL precision %.3f too low (paper: 0.7): %v", res.PRF.Precision, res.PRF)
	}
}

// TestFig6Shape: build-time and size orderings.
func TestFig6Shape(t *testing.T) {
	points := RunIndexConstruction([]int{300}, 41)
	get := func(name string) BuildPoint {
		for _, p := range points {
			if p.Scheme == name {
				return p
			}
		}
		t.Fatalf("missing %s", name)
		return BuildPoint{}
	}
	koko, inv, adv, sub := get("KOKO"), get("INVERTED"), get("ADVINVERTED"), get("SUBTREE")
	if !(koko.SizeBytes < inv.SizeBytes && inv.SizeBytes < adv.SizeBytes && adv.SizeBytes < sub.SizeBytes) {
		t.Errorf("size ordering broken: koko=%d inv=%d adv=%d sub=%d",
			koko.SizeBytes, inv.SizeBytes, adv.SizeBytes, sub.SizeBytes)
	}
	// 2× margin: the two build times are a few ms each, and scheduler noise
	// on a loaded machine can flip a head-to-head comparison.
	if !raceDetectorEnabled && sub.BuildTime*2 < koko.BuildTime {
		t.Errorf("SUBTREE built decisively faster than KOKO: %v vs %v", sub.BuildTime, koko.BuildTime)
	}
}

// TestFig78Shape: lookup effectiveness ordering — KOKO and ADVINVERTED near
// perfect, INVERTED clearly worse; KOKO lookup not slower than INVERTED.
func TestFig78Shape(t *testing.T) {
	c := corpus.GenHappyDB(800, 51)
	points := RunIndexLookup(c, 800, 52)
	get := func(name string) LookupPoint {
		for _, p := range points {
			if p.Scheme == name {
				return p
			}
		}
		t.Fatalf("missing %s", name)
		return LookupPoint{}
	}
	koko, inv, adv, sub := get("KOKO"), get("INVERTED"), get("ADVINVERTED"), get("SUBTREE")
	if koko.Effectiveness < 0.95 {
		t.Errorf("KOKO effectiveness %.3f, want ~1", koko.Effectiveness)
	}
	if adv.Effectiveness < 0.9 {
		t.Errorf("ADVINVERTED effectiveness %.3f, want ~1", adv.Effectiveness)
	}
	if inv.Effectiveness > koko.Effectiveness-0.1 {
		t.Errorf("INVERTED effectiveness %.3f not clearly below KOKO %.3f", inv.Effectiveness, koko.Effectiveness)
	}
	if sub.Supported >= koko.Supported {
		t.Errorf("SUBTREE supports %d >= KOKO %d (should be a strict subset)", sub.Supported, koko.Supported)
	}
	if !raceDetectorEnabled && koko.LookupTime > inv.LookupTime {
		t.Errorf("KOKO lookup %v slower than INVERTED %v", koko.LookupTime, inv.LookupTime)
	}
}

// TestTable1Shape: with 5 atoms the skip plan must win by a wide margin;
// with 1 atom the two are comparable.
func TestTable1Shape(t *testing.T) {
	c := corpus.GenHappyDB(400, 61)
	points := RunGSPAblation(c, "HappyDB", 62, 12, 200)
	get := func(atoms int, gsp bool) GSPPoint {
		for _, p := range points {
			if p.Atoms == atoms && p.GSP == gsp {
				return p
			}
		}
		t.Fatalf("missing point %d/%v", atoms, gsp)
		return GSPPoint{}
	}
	g5, n5 := get(5, true), get(5, false)
	if n5.PerSent < 10*g5.PerSent {
		t.Errorf("NOGSP(5 atoms) %v not >= 10x GSP %v\n%s", n5.PerSent, g5.PerSent, FormatGSP(points))
	}
	g1, n1 := get(1, true), get(1, false)
	if g1.PerSent > 20*n1.PerSent+time.Millisecond {
		t.Errorf("GSP(1 atom) %v unexpectedly dominates NOGSP %v", g1.PerSent, n1.PerSent)
	}
}

// TestTable2Shape: total time roughly linear in article count, and the
// low-selectivity query spends a larger *share* in DPLI than the
// high-selectivity one.
func TestTable2Shape(t *testing.T) {
	points := RunScaleBreakdown([]int{400, 800}, 71)
	byQ := map[string]map[int]BreakdownPoint{}
	for _, p := range points {
		if byQ[p.Query] == nil {
			byQ[p.Query] = map[int]BreakdownPoint{}
		}
		byQ[p.Query][p.Articles] = p
	}
	for q, m := range byQ {
		small, big := m[400], m[800]
		ratio := float64(big.Times.Total()) / float64(small.Times.Total()+1)
		if !raceDetectorEnabled && ratio > 8 {
			t.Errorf("%s: superlinear scaling x%.1f (%v -> %v)", q, ratio, small.Times.Total(), big.Times.Total())
		}
	}
	choc, dob := byQ["Chocolate"][800], byQ["DateOfBirth"][800]
	chocShare := float64(choc.Times.DPLI) / float64(choc.Times.Total()+1)
	dobShare := float64(dob.Times.DPLI) / float64(dob.Times.Total()+1)
	if chocShare < dobShare {
		t.Errorf("DPLI share: Chocolate %.3f < DateOfBirth %.3f (low-selectivity query should spend relatively more on lookup)", chocShare, dobShare)
	}
	// Selectivity bands: Chocolate low, DateOfBirth high.
	if choc.Selectivity > 0.05 {
		t.Errorf("Chocolate selectivity %.3f, want < 0.05", choc.Selectivity)
	}
	if dob.Selectivity < 0.5 {
		t.Errorf("DateOfBirth selectivity %.3f, want > 0.5", dob.Selectivity)
	}
}

// TestOdinShape: the mechanism behind the paper's 40×/23×/1.3× slowdowns is
// asserted deterministically — Odin always touches passes × all sentences,
// while KOKO's index pruning touches a selectivity-dependent fraction
// (tiny for Chocolate, large for DateOfBirth). Wall-clock ratios are printed
// by the harness but not asserted here (CI timing noise).
func TestOdinShape(t *testing.T) {
	points := RunOdinComparison(400, 81)
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	frac := map[string]float64{}
	for _, p := range points {
		if p.Passes < 2 {
			t.Errorf("%s: only %d passes", p.Query, p.Passes)
		}
		if p.TotalSentences == 0 {
			t.Fatalf("%s: no sentences", p.Query)
		}
		frac[p.Query] = float64(p.KokoEvaluated) / float64(p.TotalSentences)
	}
	if frac["Chocolate"] > 0.1 {
		t.Errorf("Chocolate evaluated fraction %.3f, want < 0.1 (index pruning)\n%s",
			frac["Chocolate"], FormatOdin(points))
	}
	if frac["DateOfBirth"] < 0.3 {
		t.Errorf("DateOfBirth evaluated fraction %.3f, want > 0.3 (unselective)\n%s",
			frac["DateOfBirth"], FormatOdin(points))
	}
	if frac["Chocolate"] >= frac["DateOfBirth"] {
		t.Errorf("pruning ordering broken: Chocolate %.3f >= DateOfBirth %.3f",
			frac["Chocolate"], frac["DateOfBirth"])
	}
}

// TestIndexAblationShape: the full multi-index must be at least as
// effective as every ablated configuration, and strictly better than
// PL-only (the word and POS indices earn their keep).
func TestIndexAblationShape(t *testing.T) {
	c := corpus.GenHappyDB(600, 91)
	points := RunIndexAblation(c, 92)
	byMode := map[string]AblationPoint{}
	for _, p := range points {
		byMode[p.Mode] = p
	}
	full := byMode["full multi-index"]
	if full.Effectiveness < 0.95 {
		t.Errorf("full effectiveness %.3f, want ~1", full.Effectiveness)
	}
	for mode, p := range byMode {
		if p.Effectiveness > full.Effectiveness+1e-9 {
			t.Errorf("%s effectiveness %.3f exceeds full %.3f", mode, p.Effectiveness, full.Effectiveness)
		}
	}
	if byMode["PL only"].Effectiveness >= full.Effectiveness {
		t.Errorf("PL-only (%.3f) not worse than full (%.3f): ablation shows no benefit\n%s",
			byMode["PL only"].Effectiveness, full.Effectiveness, FormatAblation(points))
	}
}
