package experiments

import (
	"context"
	"encoding/json"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/koko"
)

// The streaming-execution snapshot (kokobench -exp stream): time-to-first-
// tuple and peak heap growth of a streamed drain vs the materialized
// Collect, at two corpus sizes, rendered as BENCH_stream.json. The claims
// this artifact backs: a streamed drain's TTFT tracks the first shard's
// first batch rather than the full result (so it stays flat as the result
// grows), and its peak heap stays bounded by the fan-out's batching while
// the materialized result's grows with the tuple count.

// StreamBenchSents are the workload corpus sizes: the second is 4× the
// first, so result-size scaling is visible within a CI smoke budget.
var StreamBenchSents = []int{2000, 8000}

// StreamBenchShards is the shard fan-out both modes run over.
const StreamBenchShards = 4

// StreamPoint is one (corpus size, delivery mode) measurement.
type StreamPoint struct {
	Sents  int    `json:"sents"`
	Mode   string `json:"mode"` // "stream" (event drain) or "collect" (materialized)
	Tuples int    `json:"tuples"`
	// TTFTMs is when the first tuple is in hand: first event of the drain,
	// or Collect's return for the materialized mode. Best of iters.
	TTFTMs float64 `json:"ttft_ms"`
	// WallMs is the full evaluation + delivery wall time. Best of iters.
	WallMs float64 `json:"wall_ms"`
	// PeakHeapBytes is the peak heap growth over the pre-run baseline
	// (sampled during the drain; the live result for collect). Min of iters
	// — the least GC-noise-inflated observation.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// StreamSnapshot is the BENCH_stream.json document.
type StreamSnapshot struct {
	Workload  string        `json:"workload"`
	Note      string        `json:"note"`
	GoMaxProc int           `json:"gomaxprocs"`
	Points    []StreamPoint `json:"points"`
}

// heapBase forces a collection and reads the post-GC heap floor.
func heapBase() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// heapGrowth forces a collection and reports live-heap growth over base:
// without the GC, a short drain's discarded batches linger as garbage and
// would read as retention.
func heapGrowth(base uint64) uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc <= base {
		return 0
	}
	return ms.HeapAlloc - base
}

// RunStreamBench measures both delivery modes at each corpus size. The
// streamed drain discards tuples as they arrive (the NDJSON server path);
// the materialized mode is Run + Collect (the buffered response path).
func RunStreamBench(iters int) *StreamSnapshot {
	if iters < 1 {
		iters = 1
	}
	snap := &StreamSnapshot{
		Workload: "GenHappyDB(sents, 42) + the hotpath extract query, K=4 shards",
		Note: "refresh with `go run ./cmd/kokobench -exp stream > BENCH_stream.json`; " +
			"ttft_ms is first-tuple latency (best-of-N), wall_ms the full drain; " +
			"peak_heap_bytes samples heap growth during the drain (min-of-N) — " +
			"stream TTFT should stay flat and stream peak heap sublinear as the result grows",
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	p, err := koko.ParseQuery(HotPathExtractQuery)
	if err != nil {
		panic(err)
	}
	for _, sents := range StreamBenchSents {
		c := koko.WrapCorpus(corpus.GenHappyDB(sents, HotPathCorpusSeed))
		eng := koko.NewShardedEngine(c, StreamBenchShards, nil)

		stream := StreamPoint{Sents: sents, Mode: "stream"}
		collect := StreamPoint{Sents: sents, Mode: "collect"}
		for i := 0; i < iters; i++ {
			// Timing pass, streamed: TTFT at the first tuple event, no
			// MemStats reads in the loop (a forced GC would charge its pause
			// to the drain).
			t0 := time.Now()
			seq, err := eng.Run(context.Background(), p, nil)
			if err != nil {
				panic(err)
			}
			var ttft time.Duration
			n := 0
			for ev := range seq.Events() {
				if ev.Tuple == nil {
					continue
				}
				if n == 0 {
					ttft = time.Since(t0)
				}
				n++
			}
			if err := seq.Err(); err != nil {
				panic(err)
			}
			wall := time.Since(t0)

			// Memory pass, streamed: same drain, live heap sampled on a
			// fixed cadence so the peak reflects steady-state batching.
			base := heapBase()
			seq, err = eng.Run(context.Background(), p, nil)
			if err != nil {
				panic(err)
			}
			peak := uint64(0)
			m := 0
			for ev := range seq.Events() {
				if ev.Tuple == nil {
					continue
				}
				m++
				if m%1024 == 0 {
					if g := heapGrowth(base); g > peak {
						peak = g
					}
				}
			}
			if err := seq.Err(); err != nil {
				panic(err)
			}
			better(&stream, n, ttft, wall, peak, i == 0)

			// Materialized: the first tuple is in hand only when the whole
			// result is; peak heap is the live tuple table's retention.
			base = heapBase()
			t0 = time.Now()
			seq, err = eng.Run(context.Background(), p, nil)
			if err != nil {
				panic(err)
			}
			res, err := seq.Collect()
			if err != nil {
				panic(err)
			}
			wall = time.Since(t0)
			g := heapGrowth(base)
			runtime.KeepAlive(res)
			better(&collect, len(res.Tuples), wall, wall, g, i == 0)
		}
		snap.Points = append(snap.Points, stream, collect)
	}
	return snap
}

// better folds one iteration into a point: best (min) times, min peak heap.
func better(pt *StreamPoint, tuples int, ttft, wall time.Duration, peak uint64, first bool) {
	ttftMs := float64(ttft.Nanoseconds()) / 1e6
	wallMs := float64(wall.Nanoseconds()) / 1e6
	pt.Tuples = tuples
	if first || ttftMs < pt.TTFTMs {
		pt.TTFTMs = ttftMs
	}
	if first || wallMs < pt.WallMs {
		pt.WallMs = wallMs
	}
	if first || peak < pt.PeakHeapBytes {
		pt.PeakHeapBytes = peak
	}
}

// FormatStreamBench renders the snapshot as indented JSON (the committed
// BENCH_stream.json format).
func FormatStreamBench(s *StreamSnapshot) string {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(out) + "\n"
}
