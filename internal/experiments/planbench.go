package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// The planner snapshot (kokobench -exp plan): wall-clock of the same
// conjunction evaluated with the statistics-free planner on vs off, over
// three demo generators, rendered as BENCH_plan.json.
//
// The adversarial shape writes its least selective condition first: an
// elastic span whose candidate build scans O(t²) spans per sentence. The
// most selective condition — a two-word phrase whose words co-occur in many
// sentences but are rarely adjacent — is written last. DPLI can only
// intersect the phrase's per-word posting lists, so its candidate sentences
// are the co-occurrence set; adjacency is discovered per sentence, where the
// phrase's empty candidate list ends the sentence before any other list is
// built. Written-order evaluation pays the elastic scan on every candidate
// sentence first; the planner's DPLI estimates rank the phrase smallest and
// move it to the front, so most sentences bail before the elastic build.
//
// The well-ordered shape is the same conjunction already written in the
// planner's preferred order — the planner verifies the order and keeps it
// (reordered=false), so the on/off delta is pure planning overhead.
//
// The phrase is chosen per corpus (see planBenchCases) as a word pair with
// high co-occurrence but low adjacency in that generator's output.

// PlanAdversarialQuery is the adversarial shape. The elastic is named "a"
// and the phrase "w" so canonicalization (which breaks ready-set ties toward
// the smaller name) keeps the elastic first: the written order stays
// adversarial all the way to the evaluator.
func PlanAdversarialQuery(phrase string) string {
	return fmt.Sprintf(`extract a:Str from "docs" if (
	/ROOT:{ a = ^[min=1,max=2], v = //verb, w = %q } (w) in (a))`, phrase)
}

// PlanWellOrderedQuery is the same conjunction written in the planner's
// preferred order — the selective phrase first, then its constraint partner
// (the elastic, connected through `in`), then the unconnected verb. Names
// ascend (a, b, z) so canonicalization preserves the order; the planner
// verifies it and keeps it, making the on/off delta pure planning overhead.
func PlanWellOrderedQuery(phrase string) string {
	return fmt.Sprintf(`extract b:Str from "docs" if (
	/ROOT:{ a = %q, b = ^[min=1,max=2], z = //verb } (a) in (b))`, phrase)
}

// PlanBenchPoint is one (corpus, query shape) cell of the comparison.
type PlanBenchPoint struct {
	Corpus    string  `json:"corpus"`
	Query     string  `json:"query"` // "adversarial" or "well_ordered"
	Phrase    string  `json:"phrase"`
	Sentences int     `json:"sentences"`
	Tuples    int     `json:"tuples"`
	PlanOffMs float64 `json:"plan_off_ms"`
	PlanOnMs  float64 `json:"plan_on_ms"`
	// PlanPhaseMs is the planning phase alone (scoring + greedy ordering)
	// inside the plan-on run: the planner's true overhead, free of the
	// scheduler noise that dominates sub-millisecond total deltas.
	PlanPhaseMs float64 `json:"plan_phase_ms"`
	// Speedup is plan_off_ms / plan_on_ms (>1 means the planner won).
	Speedup   float64 `json:"speedup"`
	Reordered bool    `json:"reordered"`
}

// PlanSnapshot is the BENCH_plan.json document.
type PlanSnapshot struct {
	Workload string `json:"workload"`
	Note     string `json:"note"`
	// AggregateSpeedup is sum(plan_off_ms)/sum(plan_on_ms) over the
	// adversarial points: the workload-level win.
	AggregateSpeedup float64          `json:"aggregate_adversarial_speedup"`
	Points           []PlanBenchPoint `json:"points"`
}

// planBenchCases pins the per-corpus workload: each generator paired with a
// two-word phrase that co-occurs often but is rarely adjacent in its output.
func planBenchCases() []struct {
	name   string
	phrase string
	corpus *index.Corpus
} {
	return []struct {
		name   string
		phrase string
		corpus *index.Corpus
	}{
		{"cafes", "on the", corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus},
		{"tweets", "chiefs .", corpus.GenWNUT(corpus.WNUTConfig{Tweets: 600, Seed: 12}).Corpus},
		{"happydb", "today and", corpus.GenHappyDB(800, 13)},
	}
}

// RunPlanBench measures plan-on vs plan-off wall clock (best of iters runs
// each) for both query shapes over the three demo corpora.
func RunPlanBench(iters int) *PlanSnapshot {
	if iters < 1 {
		iters = 1
	}
	snap := &PlanSnapshot{
		Workload: "GenCafes(BaristaMag,11) / GenWNUT(600,12) / GenHappyDB(800,13); query text in internal/experiments/planbench.go",
		Note: "refresh with `go run ./cmd/kokobench -exp plan > BENCH_plan.json`; " +
			"adversarial writes the O(t²) elastic span first and the rarely-adjacent phrase last (planner must reorder); " +
			"well_ordered is the same conjunction already in the planner's preferred order — its planner overhead is " +
			"plan_phase_ms/plan_on_ms (total-time deltas at this scale are scheduler noise)",
	}
	var offSum, onSum time.Duration
	for _, cs := range planBenchCases() {
		ix := index.Build(cs.corpus)
		eng := engine.New(cs.corpus, ix, embed.NewModel(), engine.Options{})
		for _, shape := range []struct{ name, src string }{
			{"adversarial", PlanAdversarialQuery(cs.phrase)},
			{"well_ordered", PlanWellOrderedQuery(cs.phrase)},
		} {
			q := lang.MustParse(shape.src)
			off := bestOf(iters, func() (*engine.Result, error) {
				return eng.RunWith(q, engine.RunOptions{NoPlan: true})
			})
			on := bestOf(iters, func() (*engine.Result, error) {
				return eng.RunWith(q, engine.RunOptions{})
			})
			pt := PlanBenchPoint{
				Corpus:    cs.name,
				Query:     shape.name,
				Phrase:    cs.phrase,
				Sentences: cs.corpus.NumSentences(),
				PlanOffMs: float64(off.elapsed.Nanoseconds()) / 1e6,
				PlanOnMs:  float64(on.elapsed.Nanoseconds()) / 1e6,
			}
			if on.elapsed > 0 {
				pt.Speedup = float64(off.elapsed) / float64(on.elapsed)
			}
			if on.res != nil {
				pt.Tuples = len(on.res.Tuples)
				pt.PlanPhaseMs = float64(on.res.Times.Plan.Nanoseconds()) / 1e6
				if on.res.Plan != nil {
					pt.Reordered = on.res.Plan.Reordered
				}
			}
			if shape.name == "adversarial" {
				offSum += off.elapsed
				onSum += on.elapsed
			}
			snap.Points = append(snap.Points, pt)
		}
	}
	if onSum > 0 {
		snap.AggregateSpeedup = float64(offSum) / float64(onSum)
	}
	return snap
}

type timedRun struct {
	res     *engine.Result
	elapsed time.Duration
}

// planBenchBatch is how many back-to-back runs form one timing sample: a
// single run of these workloads is ~100µs, within scheduler noise, so each
// sample times a batch and reports the per-run mean.
const planBenchBatch = 16

// bestOf takes iters timing samples of f (each a batch of planBenchBatch
// runs) and keeps the fastest per-run mean; erroring samples count as
// slowest.
func bestOf(iters int, f func() (*engine.Result, error)) timedRun {
	best := timedRun{elapsed: time.Duration(1<<63 - 1)}
	for i := 0; i < iters; i++ {
		var res *engine.Result
		var err error
		t0 := time.Now()
		for b := 0; b < planBenchBatch; b++ {
			if res, err = f(); err != nil {
				break
			}
		}
		d := time.Since(t0) / planBenchBatch
		if err != nil {
			continue
		}
		if d < best.elapsed {
			best = timedRun{res: res, elapsed: d}
		}
	}
	return best
}

// FormatPlan renders the snapshot as indented JSON (the committed
// BENCH_plan.json format).
func FormatPlan(s *PlanSnapshot) string {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(out) + "\n"
}
