package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/koko"
)

// The storage-paging snapshot (kokobench -exp store): open latency, cold-
// and warm-cache query latency, and live-heap residency of the mmap block
// store against the heap-resident row store, at one fixed corpus. The
// claims this artifact backs: the block store opens by reading metadata +
// corpus only (postings stay on disk), its warm-cache query latency stays
// within ~1.3× of the heap store, and its posting residency is the cache
// budget rather than the index size.

// StoreBenchSents is the workload corpus size (sentences).
const StoreBenchSents = 20000

// StorePoint is one store format's measurements.
type StorePoint struct {
	Store  string `json:"store"` // "row" (heap-resident) or "block" (mmap + cache)
	Tuples int    `json:"tuples"`
	// FileBytes is the persisted store's size on disk.
	FileBytes int64 `json:"file_bytes"`
	// OpenMs is the time to reopen the persisted store (best of iters).
	// For the row store this decodes every posting list; for the block
	// store it reads metadata and the corpus only.
	OpenMs float64 `json:"open_ms"`
	// ColdMs is the first run of the query suite after an open — for the
	// block store this pays mmap page-ins and block decodes (best of iters,
	// each against a fresh open).
	ColdMs float64 `json:"cold_ms"`
	// WarmMs is a repeat run with caches hot (best of iters).
	WarmMs float64 `json:"warm_ms"`
	// LiveHeapBytes is post-GC live-heap growth over the pre-open baseline
	// with the engine open and the suite run — the resident cost a server
	// pays to keep this corpus queryable. Sampled on the first iteration
	// only: later baselines are polluted by the previous iteration's
	// engine, which a block reader's finalizer keeps alive across one GC.
	LiveHeapBytes uint64 `json:"live_heap_bytes"`
}

// StoreSnapshot is the BENCH_store.json document.
type StoreSnapshot struct {
	Workload  string       `json:"workload"`
	Note      string       `json:"note"`
	GoMaxProc int          `json:"gomaxprocs"`
	Points    []StorePoint `json:"points"`
}

// RunStoreBench persists one corpus in both formats and measures each.
func RunStoreBench(iters int) *StoreSnapshot {
	if iters < 1 {
		iters = 1
	}
	snap := &StoreSnapshot{
		Workload: "GenHappyDB(20000, 42) + the hotpath extract query, single engine",
		Note: "refresh with `go run ./cmd/kokobench -exp store > BENCH_store.json`; " +
			"open_ms decodes everything for row but only metadata+corpus for block; " +
			"cold_ms includes block decodes, warm_ms should be within ~1.3x of row; " +
			"live_heap_bytes shows block residency bounded by the cache budget",
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	c := koko.WrapCorpus(corpus.GenHappyDB(StoreBenchSents, HotPathCorpusSeed))
	builder := koko.NewEngine(c, nil)
	paths := map[string]string{
		"row":   filepath.Join(dir, "row.koko"),
		"block": filepath.Join(dir, "block.koko"),
	}
	if err := builder.SaveAs(paths["row"], koko.FormatRow); err != nil {
		panic(err)
	}
	if err := builder.SaveAs(paths["block"], koko.FormatBlock); err != nil {
		panic(err)
	}

	p, err := koko.ParseQuery(HotPathExtractQuery)
	if err != nil {
		panic(err)
	}
	runSuite := func(eng *koko.Engine) int {
		seq, err := eng.Run(context.Background(), p, nil)
		if err != nil {
			panic(err)
		}
		res, err := seq.Collect()
		if err != nil {
			panic(err)
		}
		return len(res.Tuples)
	}

	for _, store := range []string{"row", "block"} {
		path := paths[store]
		pt := StorePoint{Store: store}
		if fi, err := os.Stat(path); err == nil {
			pt.FileBytes = fi.Size()
		}
		for i := 0; i < iters; i++ {
			base := heapBase()
			t0 := time.Now()
			eng, err := koko.Load(path, nil)
			if err != nil {
				panic(err)
			}
			open := time.Since(t0)

			t0 = time.Now()
			pt.Tuples = runSuite(eng)
			cold := time.Since(t0)

			t0 = time.Now()
			runSuite(eng)
			warm := time.Since(t0)

			heap := heapGrowth(base)
			runtime.KeepAlive(eng)

			openMs := float64(open.Nanoseconds()) / 1e6
			coldMs := float64(cold.Nanoseconds()) / 1e6
			warmMs := float64(warm.Nanoseconds()) / 1e6
			if i == 0 || openMs < pt.OpenMs {
				pt.OpenMs = openMs
			}
			if i == 0 || coldMs < pt.ColdMs {
				pt.ColdMs = coldMs
			}
			if i == 0 || warmMs < pt.WarmMs {
				pt.WarmMs = warmMs
			}
			if i == 0 {
				pt.LiveHeapBytes = heap
			}
		}
		snap.Points = append(snap.Points, pt)
	}
	return snap
}

// FormatStoreBench renders the snapshot as indented JSON (the committed
// BENCH_store.json format).
func FormatStoreBench(s *StoreSnapshot) string {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(out) + "\n"
}
