package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
)

// AblationPoint is one row of the multi-index ablation: DPLI restricted to a
// subset of the index families.
type AblationPoint struct {
	Mode          string
	LookupTime    time.Duration
	Effectiveness float64
	Queries       int
}

// ablationModes are the configurations compared: the full multi-index and
// each family removed. The ordering is the reporting order.
var ablationModes = []struct {
	name string
	mode engine.AblationMode
}{
	{"full multi-index", engine.FullMode},
	{"no word index", engine.AblationMode{UsePL: true, UsePOS: true}},
	{"no POS index", engine.AblationMode{UsePL: true, UseWords: true}},
	{"no PL index", engine.AblationMode{UsePOS: true, UseWords: true}},
	{"PL only", engine.AblationMode{UsePL: true}},
}

// RunIndexAblation measures lookup time and effectiveness of DPLI with each
// index family removed, over the SyntheticTree benchmark — the design-choice
// ablation DESIGN.md calls out: is the *multi*-indexing scheme (simultaneous
// access to hierarchy and inverted indices) actually needed, or would one
// family do?
func RunIndexAblation(c *index.Corpus, seed int64) []AblationPoint {
	bench := corpus.GenSyntheticTree(c, seed)
	ix := index.Build(c)
	var out []AblationPoint
	for _, m := range ablationModes {
		p := AblationPoint{Mode: m.name}
		var effSum float64
		for _, bq := range bench {
			p.Queries++
			t0 := time.Now()
			var sidSets [][]int32
			empty := false
			for _, v := range bq.Query.Vars {
				ps, ok := engine.LookupDecomposedMode(ix, v.Steps, m.mode)
				if !ok {
					empty = true
					break
				}
				sidSets = append(sidSets, index.SidsOf(ps))
			}
			var cands []int32
			if !empty && len(sidSets) > 0 {
				cands = sidSets[0]
				for _, s := range sidSets[1:] {
					cands = index.IntersectSids(cands, s)
				}
			}
			p.LookupTime += time.Since(t0)
			matching := 0
			for _, sid := range cands {
				sent := &c.Sentences[sid]
				all := true
				for _, v := range bq.Query.Vars {
					if len(engine.MatchPath(sent, v.Steps)) == 0 {
						all = false
						break
					}
				}
				if all {
					matching++
				}
			}
			if len(cands) > 0 {
				effSum += float64(matching) / float64(len(cands))
			} else {
				effSum += 1
			}
		}
		if p.Queries > 0 {
			p.Effectiveness = effSum / float64(p.Queries)
		}
		out = append(out, p)
	}
	return out
}

// FormatAblation renders the ablation table.
func FormatAblation(points []AblationPoint) string {
	var b strings.Builder
	b.WriteString("Multi-index ablation — DPLI over the SyntheticTree benchmark\n")
	fmt.Fprintf(&b, "%-20s %-14s %-14s %-8s\n", "configuration", "lookup (ms)", "effectiveness", "queries")
	for _, p := range points {
		fmt.Fprintf(&b, "%-20s %-14.1f %-14.3f %-8d\n",
			p.Mode, float64(p.LookupTime.Microseconds())/1000, p.Effectiveness, p.Queries)
	}
	return b.String()
}
