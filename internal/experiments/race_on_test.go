//go:build race

package experiments

// raceDetectorEnabled lets timing-shape tests skip themselves: race
// instrumentation perturbs runtimes by ~10x and unevenly across code
// paths, so wall-clock comparisons stop meaning anything.
const raceDetectorEnabled = true
