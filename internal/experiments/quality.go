package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/baselines/crf"
	"repro/internal/baselines/ike"
	"repro/internal/baselines/nell"
	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// QualityResult is one panel of Figures 3/4: three systems' PRF series.
type QualityResult struct {
	Dataset string
	Koko    Series
	IKE     Series
	CRF     Series
}

// RunCafeExtraction reproduces one Figure 3 panel: KOKO (threshold sweep),
// IKE, and CRFsuite extracting cafe names from a blog corpus.
func RunCafeExtraction(name string, lc *corpus.Labeled) (*QualityResult, error) {
	model := embed.NewModel()
	ix := index.Build(lc.Corpus)
	eng := engine.New(lc.Corpus, ix, model, engine.Options{Dicts: lc.Dicts})

	res := &QualityResult{Dataset: name, Koko: Series{Name: "Koko", Points: map[float64]PRF{}}}
	for _, t := range Thresholds {
		r, err := eng.Run(CafeQuery(t, true))
		if err != nil {
			return nil, err
		}
		res.Koko.Points[t] = Score(valuesOf(r, 0), lc.Truth)
	}

	res.IKE = flatSeries("IKE", runIKE(lc.Corpus, model, IKECafePatterns, lc.Truth))
	res.CRF = flatSeries("CRFsuite", runCRF(lc.Corpus, lc.TrainSplit, lc.Truth))
	return res, nil
}

// RunKokoNoDescriptors reproduces Figure 5: the cafe query with descriptor
// conditions removed.
func RunKokoNoDescriptors(name string, lc *corpus.Labeled) (Series, error) {
	model := embed.NewModel()
	ix := index.Build(lc.Corpus)
	eng := engine.New(lc.Corpus, ix, model, engine.Options{Dicts: lc.Dicts})
	s := Series{Name: "No descriptors", Points: map[float64]PRF{}}
	for _, t := range Thresholds {
		r, err := eng.Run(CafeQuery(t, false))
		if err != nil {
			return s, err
		}
		s.Points[t] = Score(valuesOf(r, 0), lc.Truth)
	}
	return s, nil
}

// RunTweetExtraction reproduces one Figure 4 panel over the WNUT tweets.
func RunTweetExtraction(w *corpus.WNUT, category string) (*QualityResult, error) {
	model := embed.NewModel()
	ix := index.Build(w.Corpus)
	eng := engine.New(w.Corpus, ix, model, engine.Options{})

	var truth map[string]bool
	var mkQuery func(float64) *lang.Query
	var patterns []string
	switch category {
	case "teams":
		truth, mkQuery, patterns = w.Teams, TeamQuery, IKETeamPatterns
	case "facilities":
		truth, mkQuery, patterns = w.Facilities, FacilityQuery, IKEFacilityPatterns
	default:
		return nil, fmt.Errorf("unknown category %q", category)
	}

	res := &QualityResult{Dataset: "WNUT/" + category, Koko: Series{Name: "Koko", Points: map[float64]PRF{}}}
	for _, t := range Thresholds {
		r, err := eng.Run(mkQuery(t))
		if err != nil {
			return nil, err
		}
		res.Koko.Points[t] = Score(valuesOf(r, 0), truth)
	}
	res.IKE = flatSeries("IKE", runIKE(w.Corpus, model, patterns, truth))
	res.CRF = flatSeries("CRFsuite", runCRFTweets(w, truth))
	return res, nil
}

func runIKE(c *index.Corpus, model *embed.Model, patternSrcs []string, truth map[string]bool) PRF {
	var ps []*ike.Pattern
	for _, src := range patternSrcs {
		ps = append(ps, ike.MustParse(src))
	}
	got := ike.NewExtractor(model).Run(c, ps)
	lower := map[string]bool{}
	for g := range got {
		lower[strings.ToLower(g)] = true
	}
	return Score(lower, truth)
}

// runCRF trains on the training half of the documents (the paper's 50%
// split) and evaluates the predicted spans over the whole corpus.
func runCRF(c *index.Corpus, trainSplit map[int]bool, truth map[string]bool) PRF {
	var examples []crf.Example
	for sid := range c.Sentences {
		if !trainSplit[c.DocOfSent[sid]] {
			continue
		}
		examples = append(examples, crf.BIOFromSpans(&c.Sentences[sid], truth))
	}
	tagger := crf.Train(examples, 6, 11)
	extracted := map[string]bool{}
	for sid := range c.Sentences {
		if trainSplit[c.DocOfSent[sid]] {
			continue
		}
		s := &c.Sentences[sid]
		tokens := make([]string, len(s.Tokens))
		for i := range s.Tokens {
			tokens[i] = s.Tokens[i].Text
		}
		for _, span := range crf.ExtractSpans(tokens, tagger.Predict(tokens)) {
			extracted[strings.ToLower(span)] = true
		}
	}
	return Score(extracted, truth)
}

func runCRFTweets(w *corpus.WNUT, truth map[string]bool) PRF {
	return runCRF(w.Corpus, w.TrainSplit, truth)
}

// NELLResult is the §6.1 NELL comparison.
type NELLResult struct {
	Dataset  string
	PRF      PRF
	Patterns int
}

// RunNELL reproduces the §6.1 NELL experiment: the bootstrapper reads a
// synthetic Web corpus (NELL reads the Web, not the blog corpus) seeded with
// 17 well-known cafe chains; its promoted category members are then scored
// against the blog ground truth. Rare blog cafes barely occur on the "Web",
// so recall collapses while precision stays high — the paper's observation.
func RunNELL(name string, lc *corpus.Labeled, seed int64) NELLResult {
	web, seeds := genWebCorpus(lc, seed)
	b := nell.New(nell.DefaultConfig())
	res := b.Run(web, seeds)
	return NELLResult{Dataset: name, PRF: Score(res.Instances, lc.Truth), Patterns: res.Patterns}
}

// genWebCorpus builds the synthetic Web: famous chains (the 17 seeds)
// mentioned frequently in shared contexts, a handful of the blog corpus's
// cafes that happen to be Web-famous, and non-cafe organizations sharing
// some cafe-like contexts.
func genWebCorpus(lc *corpus.Labeled, seed int64) (*index.Corpus, []string) {
	r := rand.New(rand.NewSource(seed))
	seeds := []string{
		"Starbucks", "Blue Bottle", "Stumptown Coffee", "Intelligentsia",
		"Peets Coffee", "Caribou Coffee", "Costa Coffee", "Tim Hortons",
		"Dunkin", "Lavazza Cafe", "Verve Coffee", "Ritual Coffee",
		"Sightglass", "Heart Roasters", "Coava Coffee", "Barista Parlor",
		"Gregorys Coffee",
	}
	// A few blog cafes are famous enough to appear on the Web with the same
	// contextual patterns (these are the ones NELL can find).
	var truthNames []string
	for n := range lc.Truth {
		truthNames = append(truthNames, n)
	}
	sort.Strings(truthNames)
	famous := truthNames[:min(10, len(truthNames))]
	// Non-cafe distractors that share cafe contexts (NELL's false
	// positives).
	distractors := []string{"Midtown Gallery", "Harbor Books", "Union Cinema"}

	contexts := []string{
		"Customers order espresso at %s every morning.",
		"Reviewers praised %s for its espresso downtown.",
		"The chain %s announced a new location this week.",
	}
	var texts []string
	emit := func(name string, times int) {
		title := titleCase(name)
		for i := 0; i < times; i++ {
			texts = append(texts, fmt.Sprintf(contexts[r.Intn(len(contexts))], title))
		}
	}
	for _, s := range seeds {
		emit(s, 4)
	}
	for _, f := range famous {
		emit(f, 3)
	}
	for _, d := range distractors {
		emit(d, 3)
	}
	r.Shuffle(len(texts), func(i, j int) { texts[i], texts[j] = texts[j], texts[i] })
	return index.NewCorpus(nil, texts), seeds
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// titleCase capitalizes the first letter of each space-separated word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if w != "" && w[0] >= 'a' && w[0] <= 'z' {
			words[i] = string(w[0]-32) + w[1:]
		}
	}
	return strings.Join(words, " ")
}

// FormatQuality renders a quality panel in the three-metric layout of
// Figures 3/4.
func FormatQuality(q *QualityResult) string {
	var b strings.Builder
	series := []Series{q.CRF, q.IKE, q.Koko}
	b.WriteString(FormatSeries(q.Dataset+" — Precision", series, func(p PRF) float64 { return p.Precision }))
	b.WriteString(FormatSeries(q.Dataset+" — Recall", series, func(p PRF) float64 { return p.Recall }))
	b.WriteString(FormatSeries(q.Dataset+" — F1", series, func(p PRF) float64 { return p.F1 }))
	t, best := bestF1(q.Koko)
	fmt.Fprintf(&b, "Koko best F1 %.3f at threshold %.2f\n", best.F1, t)
	return b.String()
}
