package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/baselines/indexing"
	"repro/internal/corpus"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/store"
)

// SchemeNames fixes the reporting order of the four schemes.
var SchemeNames = []string{"INVERTED", "ADVINVERTED", "SUBTREE", "KOKO"}

func newScheme(name string) indexing.Scheme {
	switch name {
	case "INVERTED":
		return indexing.NewInverted()
	case "ADVINVERTED":
		return indexing.NewAdvInverted()
	case "SUBTREE":
		return indexing.NewSubtree()
	default:
		return indexing.NewKoko()
	}
}

// BuildPoint is one Figure 6 measurement.
type BuildPoint struct {
	Articles  int
	Scheme    string
	BuildTime time.Duration
	SizeBytes int64
}

// RunIndexConstruction reproduces Figure 6: index build time and size as
// the Wikipedia-like corpus grows.
func RunIndexConstruction(sizes []int, seed int64) []BuildPoint {
	var out []BuildPoint
	for _, n := range sizes {
		c, _ := corpus.GenWikipedia(n, seed)
		for _, name := range SchemeNames {
			s := newScheme(name)
			t0 := time.Now()
			s.Build(c)
			dur := time.Since(t0)
			db := store.NewDB()
			s.Save(db)
			out = append(out, BuildPoint{
				Articles: n, Scheme: name,
				BuildTime: dur, SizeBytes: db.SizeBytes(),
			})
		}
	}
	return out
}

// FormatBuild renders Figure 6 as two tables.
func FormatBuild(points []BuildPoint) string {
	byScheme := map[string]map[int]BuildPoint{}
	var sizes []int
	seen := map[int]bool{}
	for _, p := range points {
		if byScheme[p.Scheme] == nil {
			byScheme[p.Scheme] = map[int]BuildPoint{}
		}
		byScheme[p.Scheme][p.Articles] = p
		if !seen[p.Articles] {
			seen[p.Articles] = true
			sizes = append(sizes, p.Articles)
		}
	}
	var b strings.Builder
	b.WriteString("Figure 6(a) — index build time (ms)\n")
	fmt.Fprintf(&b, "%-14s", "#articles")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteByte('\n')
	for _, s := range SchemeNames {
		fmt.Fprintf(&b, "%-14s", s)
		for _, n := range sizes {
			fmt.Fprintf(&b, "%10.1f", float64(byScheme[s][n].BuildTime.Microseconds())/1000)
		}
		b.WriteByte('\n')
	}
	b.WriteString("Figure 6(b) — index size (KB)\n")
	fmt.Fprintf(&b, "%-14s", "#articles")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteByte('\n')
	for _, s := range SchemeNames {
		fmt.Fprintf(&b, "%-14s", s)
		for _, n := range sizes {
			fmt.Fprintf(&b, "%10.1f", float64(byScheme[s][n].SizeBytes)/1024)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LookupPoint is one Figure 7/8 measurement for one scheme at one corpus
// size.
type LookupPoint struct {
	Scheme        string
	CorpusSize    int // sentences (HappyDB) or articles (Wikipedia)
	Supported     int
	LookupTime    time.Duration // total over supported benchmark queries
	Effectiveness float64       // mean over supported queries
	// ByExtractions buckets (log10 of #matching sentences) -> (avg lookup
	// time, avg effectiveness) for panels (c) and (d).
	ByExtractions map[int]BucketStat
}

// BucketStat aggregates one extraction-count bucket.
type BucketStat struct {
	Queries       int
	AvgLookup     time.Duration
	Effectiveness float64
}

// RunIndexLookup reproduces Figures 7 and 8 over one corpus: the
// SyntheticTree benchmark is generated from the corpus, each scheme answers
// every supported query, and lookup time plus effectiveness (the fraction
// of returned sentences that truly contain bindings for all variables) are
// measured.
func RunIndexLookup(c *index.Corpus, sizeLabel int, seed int64) []LookupPoint {
	bench := corpus.GenSyntheticTree(c, seed)
	var out []LookupPoint
	for _, name := range SchemeNames {
		s := newScheme(name)
		s.Build(c)
		p := LookupPoint{Scheme: name, CorpusSize: sizeLabel, ByExtractions: map[int]BucketStat{}}
		var effSum float64
		type bucketAcc struct {
			n   int
			dur time.Duration
			eff float64
		}
		buckets := map[int]*bucketAcc{}
		for _, bq := range bench {
			if !s.Supports(bq.Query) {
				continue
			}
			p.Supported++
			t0 := time.Now()
			cands := s.Candidates(bq.Query)
			dur := time.Since(t0)
			p.LookupTime += dur
			// Effectiveness: fraction of returned sentences that truly
			// match every variable (checked soundly on the candidates).
			matching := 0
			for _, sid := range cands {
				sent := &c.Sentences[sid]
				all := true
				for _, v := range bq.Query.Vars {
					if len(engine.MatchPath(sent, v.Steps)) == 0 {
						all = false
						break
					}
				}
				if all {
					matching++
				}
			}
			eff := 1.0
			if len(cands) > 0 {
				eff = float64(matching) / float64(len(cands))
			}
			effSum += eff
			bucket := 0
			if matching > 0 {
				bucket = int(math.Floor(math.Log10(float64(matching)))) + 1
			}
			acc := buckets[bucket]
			if acc == nil {
				acc = &bucketAcc{}
				buckets[bucket] = acc
			}
			acc.n++
			acc.dur += dur
			acc.eff += eff
		}
		if p.Supported > 0 {
			p.Effectiveness = effSum / float64(p.Supported)
		}
		for bk, acc := range buckets {
			p.ByExtractions[bk] = BucketStat{
				Queries:       acc.n,
				AvgLookup:     acc.dur / time.Duration(acc.n),
				Effectiveness: acc.eff / float64(acc.n),
			}
		}
		out = append(out, p)
	}
	return out
}

// FormatLookup renders one corpus-size row of Figures 7/8.
func FormatLookup(title string, pointsBySize map[int][]LookupPoint, sizes []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — lookup time (ms, total over supported queries)\n%-14s", title, "size")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%12d", n)
	}
	b.WriteByte('\n')
	for _, s := range SchemeNames {
		fmt.Fprintf(&b, "%-14s", s)
		for _, n := range sizes {
			fmt.Fprintf(&b, "%12.1f", float64(findPoint(pointsBySize[n], s).LookupTime.Microseconds())/1000)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s — effectiveness\n%-14s", title, "size")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%12d", n)
	}
	b.WriteByte('\n')
	for _, s := range SchemeNames {
		fmt.Fprintf(&b, "%-14s", s)
		for _, n := range sizes {
			fmt.Fprintf(&b, "%12.3f", findPoint(pointsBySize[n], s).Effectiveness)
		}
		b.WriteByte('\n')
	}
	// Panels (c)/(d): per-extraction-bucket stats at the largest size.
	last := sizes[len(sizes)-1]
	fmt.Fprintf(&b, "%s — by #extractions (largest corpus: %d)\n", title, last)
	fmt.Fprintf(&b, "%-14s %-10s %-8s %-14s %-12s\n", "scheme", "bucket", "queries", "avg lookup", "effectiveness")
	for _, s := range SchemeNames {
		p := findPoint(pointsBySize[last], s)
		var bks []int
		for bk := range p.ByExtractions {
			bks = append(bks, bk)
		}
		sortIntsAsc(bks)
		for _, bk := range bks {
			st := p.ByExtractions[bk]
			fmt.Fprintf(&b, "%-14s 10^%-7d %-8d %-14s %-12.3f\n", s, bk, st.Queries, st.AvgLookup, st.Effectiveness)
		}
	}
	return b.String()
}

func findPoint(ps []LookupPoint, scheme string) LookupPoint {
	for _, p := range ps {
		if p.Scheme == scheme {
			return p
		}
	}
	return LookupPoint{}
}

func sortIntsAsc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
