package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baselines/odin"
	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/store"
)

// GSPPoint is one Table 1 cell: average extract-clause evaluation time per
// sentence for one atom count, with the skip plan on or off.
type GSPPoint struct {
	Corpus  string
	Atoms   int
	GSP     bool
	PerSent time.Duration
	Queries int
}

// RunGSPAblation reproduces Table 1 over one corpus: the SyntheticSpan
// benchmark (perSetting queries per atom count) evaluated with and without
// the skip plan; the metric is extract-clause time (GSP + nested loops)
// divided by the number of sentences evaluated.
func RunGSPAblation(c *index.Corpus, label string, seed int64, perSetting, maxSents int) []GSPPoint {
	queries := corpus.GenSyntheticSpanOver(c, seed, perSetting)
	ix := index.Build(c)
	// Bound the per-query work for the NOGSP runs: evaluation is restricted
	// to a prefix of the corpus so the quadratic nested loops stay tractable
	// (the paper reports per-sentence averages, which this preserves).
	sub := c
	if maxSents > 0 && maxSents < c.NumSentences() {
		sub = &index.Corpus{}
		for sid := 0; sid < maxSents; sid++ {
			s := c.Sentences[sid]
			sub.Sentences = append(sub.Sentences, s)
			sub.DocOfSent = append(sub.DocOfSent, len(sub.Docs))
			sub.Docs = append(sub.Docs, index.DocMeta{Name: fmt.Sprintf("s%d", sid), FirstSID: sid, NumSents: 1})
		}
		ix = index.Build(sub)
	}
	var out []GSPPoint
	for _, atoms := range []int{1, 3, 5} {
		for _, gsp := range []bool{true, false} {
			eng := engine.New(sub, ix, nil, engine.Options{DisableSkipPlan: !gsp})
			var total time.Duration
			var sents int
			n := 0
			for _, q := range queries {
				if q.Atoms != atoms {
					continue
				}
				res, err := eng.Run(q.Query)
				if err != nil {
					continue
				}
				total += res.Times.GSP + res.Times.Extract
				sents += res.EvaluatedSentences
				n++
			}
			p := GSPPoint{Corpus: label, Atoms: atoms, GSP: gsp, Queries: n}
			if sents > 0 {
				p.PerSent = total / time.Duration(sents)
			}
			out = append(out, p)
		}
	}
	return out
}

// FormatGSP renders Table 1.
func FormatGSP(points []GSPPoint) string {
	var b strings.Builder
	b.WriteString("Table 1 — avg extract-clause evaluation time (ms/sentence)\n")
	byKey := map[string]GSPPoint{}
	var corpora []string
	seen := map[string]bool{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s|%d|%v", p.Corpus, p.Atoms, p.GSP)] = p
		if !seen[p.Corpus] {
			seen[p.Corpus] = true
			corpora = append(corpora, p.Corpus)
		}
	}
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range corpora {
		fmt.Fprintf(&b, "%-30s", c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "# of atoms")
	for range corpora {
		fmt.Fprintf(&b, "%-10s%-10s%-10s", "1", "3", "5")
	}
	b.WriteByte('\n')
	for _, gsp := range []bool{true, false} {
		name := "KOKO&GSP"
		if !gsp {
			name = "KOKO&NOGSP"
		}
		fmt.Fprintf(&b, "%-16s", name)
		for _, c := range corpora {
			for _, atoms := range []int{1, 3, 5} {
				p := byKey[fmt.Sprintf("%s|%d|%v", c, atoms, gsp)]
				fmt.Fprintf(&b, "%-10.3f", float64(p.PerSent.Microseconds())/1000)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BreakdownPoint is one Table 2 row: the per-phase execution time of one
// §6.3 query at one corpus scale.
type BreakdownPoint struct {
	Query    string
	Articles int
	Times    engine.PhaseTimes
	Tuples   int
	// Selectivity: fraction of articles with >= 1 extraction.
	Selectivity float64
}

// RunScaleBreakdown reproduces Table 2: the three queries over a growing
// Wikipedia corpus with the article store on "disk" (the storage substrate),
// reporting the Normalize / DPLI / LoadArticle / GSP / extract / satisfying
// breakdown.
func RunScaleBreakdown(sizes []int, seed int64) []BreakdownPoint {
	var out []BreakdownPoint
	for _, n := range sizes {
		c, _ := corpus.GenWikipedia(n, seed)
		ix := index.Build(c)
		db := store.NewDB()
		c.SaveParsed(db)
		eng := engine.New(c, ix, embed.NewModel(), engine.Options{ArticleDB: db})
		for _, name := range ScaleQueryOrder {
			q := ScaleQueries()[name]
			res, err := eng.Run(q)
			if err != nil {
				continue
			}
			docs := map[int]bool{}
			for _, t := range res.Tuples {
				docs[t.Doc] = true
			}
			out = append(out, BreakdownPoint{
				Query: name, Articles: n, Times: res.Times, Tuples: len(res.Tuples),
				Selectivity: float64(len(docs)) / float64(n),
			})
		}
	}
	return out
}

// FormatBreakdown renders Table 2.
func FormatBreakdown(points []BreakdownPoint) string {
	var b strings.Builder
	b.WriteString("Table 2 — KOKO execution time (ms) per phase\n")
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-10s %-12s %-8s %-10s %-12s %-8s %-6s\n",
		"query", "articles", "Normalize", "DPLI", "LoadArticle", "GSP", "extract", "satisfying", "tuples", "sel")
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %-10d %-10.2f %-10.2f %-12.2f %-8.2f %-10.2f %-12.2f %-8d %-6.2f\n",
			p.Query, p.Articles,
			ms(p.Times.Normalize), ms(p.Times.DPLI), ms(p.Times.LoadArticle),
			ms(p.Times.GSP), ms(p.Times.Extract), ms(p.Times.Satisfying),
			p.Tuples, p.Selectivity)
	}
	return b.String()
}

// OdinPoint is one §6.3 Odin-vs-KOKO comparison row.
type OdinPoint struct {
	Query    string
	Koko     time.Duration
	Odin     time.Duration
	Slowdown float64
	Passes   int
	// KokoEvaluated / TotalSentences exposes the pruning that drives the
	// gap: Odin always touches Passes × TotalSentences.
	KokoEvaluated  int
	TotalSentences int
}

// RunOdinComparison reproduces the §6.3 Odin comparison on a Wikipedia
// corpus: each query runs through KOKO (with index pruning and satisfying
// clauses) and through the Odin cascade (extract clause only, no index,
// iterated to fixpoint).
func RunOdinComparison(nArticles int, seed int64) []OdinPoint {
	c, _ := corpus.GenWikipedia(nArticles, seed)
	ix := index.Build(c)
	eng := engine.New(c, ix, embed.NewModel(), engine.Options{})
	runner := odin.New(c, ix)
	var out []OdinPoint
	for i, name := range ScaleQueryOrder {
		q := ScaleQueries()[name]
		// Best of three runs on each side, to damp scheduler noise.
		kokoDur := time.Duration(1 << 62)
		evaluated := 0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			res, err := eng.Run(q)
			if err != nil {
				continue
			}
			if d := time.Since(t0); d < kokoDur {
				kokoDur = d
			}
			evaluated = res.EvaluatedSentences
		}
		oq := stripSatisfying(q)
		odinDur := time.Duration(1 << 62)
		passes := 0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			_, p := runner.Run([]odin.Rule{{Name: name, Priority: i + 1, Query: oq}})
			if d := time.Since(t0); d < odinDur {
				odinDur = d
			}
			passes = p
		}
		p := OdinPoint{
			Query: name, Koko: kokoDur, Odin: odinDur, Passes: passes,
			KokoEvaluated: evaluated, TotalSentences: c.NumSentences(),
		}
		if kokoDur > 0 {
			p.Slowdown = float64(odinDur) / float64(kokoDur)
		}
		out = append(out, p)
	}
	return out
}

// stripSatisfying drops satisfying/excluding clauses (Odin cannot aggregate
// evidence; "our translated queries contain only extract clauses").
func stripSatisfying(q *lang.Query) *lang.Query {
	cp := *q
	cp.Satisfying = nil
	cp.Excluding = nil
	return &cp
}

// FormatOdin renders the comparison.
func FormatOdin(points []OdinPoint) string {
	var b strings.Builder
	b.WriteString("§6.3 Odin comparison\n")
	fmt.Fprintf(&b, "%-14s %-12s %-12s %-10s %-8s\n", "query", "Koko", "Odin", "slowdown", "passes")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %-12s %-12s %-10.1f %-8d\n", p.Query, p.Koko.Round(time.Microsecond), p.Odin.Round(time.Microsecond), p.Slowdown, p.Passes)
	}
	return b.String()
}
