package experiments

import (
	"fmt"

	"repro/internal/koko/lang"
)

// CafeQuery builds the Figure 9 cafe-name query at a threshold. Weights
// follow the paper's strategy: weight 1 for conditions that certainly
// indicate a cafe, smaller weights for the more-likely and less-likely
// evidence groups (we use 0.8/0.5/0.2-style magnitudes scaled so a couple of
// weak signals cross mid thresholds, as in §6.1's high/medium/low grouping).
func CafeQuery(threshold float64, withDescriptors bool) *lang.Query {
	desc := ""
	if withDescriptors {
		desc = `
		(x [["sells coffee"]] {0.2}) or
		(x [["serves coffee"]] {0.2}) or
		(x [["pours espresso"]] {0.2}) or
		(x [["hired barista"]] {0.18}) or
		(x [["employed barista"]] {0.18}) or
		(x [["coffee menu"]] {0.15}) or
		([["coffee menu at"]] x {0.15}) or`
	}
	src := fmt.Sprintf(`
		extract x:Entity from "blogs" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		(str(x) contains "Coffee" {1}) or
		(str(x) contains "Roasters" {1}) or
		("cafe called" x {1}) or
		(x ", a cafe" {1}) or %s
		(x near "espresso" {0.1})
		with threshold %g
		excluding
		(str(x) matches "[a-z 0-9.]+") or
		(str(x) matches "[A-Za-z 0-9.]*[Bb]arista [Cc]hampionship") or
		(str(x) matches "[A-Za-z 0-9.]*[Ff]est(ival)?") or
		(str(x) matches "[Ll]a Marzocco") or
		(str(x) matches "[Ss]ynesso") or
		(str(x) matches "[Aa]eropress") or
		(str(x) matches "[Vv]60") or
		(str(x) matches "[0-9]+ [0-9A-Za-z ]+ [Ss]t(reet)?.?") or
		(str(x) matches "[0-9]+ [0-9A-Za-z ]+ [Aa]ve(nue)?.?") or
		(str(x) in dict("Location"))`, desc, threshold)
	return lang.MustParse(src)
}

// IKECafePatterns is the appendix A.1 IKE translation (the str-contains and
// near conditions cannot be expressed in IKE and are omitted, as the paper
// notes).
var IKECafePatterns = []string{
	`"cafe called" (NP)`,
	`"cafes such as" (NP)`,
	`(NP) ("sells coffee" ~ 10)`,
	`(NP) ("serves coffee" ~ 10)`,
	`("coffee from" ~ 10) (NP)`,
	`("baristas of" ~ 10) (NP)`,
	`(NP) ("baristas" ~ 10)`,
	`(NP) ("barista champion" ~ 10)`,
	`("barista champion" ~ 10) (NP)`,
	`(NP) ("pour-over" ~ 10)`,
	`(NP) ("coffee menu" ~ 10)`,
	`("coffee menu" ~ 10) (NP)`,
}

// FacilityQuery is Figure 10 at a threshold.
func FacilityQuery(threshold float64) *lang.Query {
	return lang.MustParse(fmt.Sprintf(`
		extract x:Entity from "tweets" if ()
		satisfying x
		("at" x {1}) or
		([["went to"]] x {0.8}) or
		([["go to"]] x {0.8})
		with threshold %g
		excluding
		(str(x) contains "p.m.") or
		(str(x) contains "a.m.") or
		(str(x) contains "pm") or
		(str(x) contains "am") or
		(str(x) mentions "@") or
		(str(x) contains "today") or
		(str(x) contains "tomorrow") or
		(str(x) contains "tonight")`, threshold))
}

// TeamQuery is Figure 11 at a threshold.
func TeamQuery(threshold float64) *lang.Query {
	return lang.MustParse(fmt.Sprintf(`
		extract x:Entity from "tweets" if ()
		satisfying x
		(x [["to host"]] {0.9}) or
		(x "vs" {0.9}) or
		("vs" x {0.9}) or
		(x "versus" {0.9}) or
		(x [["soccer"]] {0.9}) or
		("go" x {0.9})
		with threshold %g`, threshold))
}

// IKEFacilityPatterns / IKETeamPatterns translate Figures 10/11 to IKE.
var IKEFacilityPatterns = []string{
	`"at" (NP)`,
	`("went to" ~ 10) (NP)`,
	`("go to" ~ 10) (NP)`,
}

var IKETeamPatterns = []string{
	`(NP) ("to host" ~ 10)`,
	`(NP) "vs"`,
	`"vs" (NP)`,
	`(NP) "versus"`,
	`(NP) ("soccer" ~ 10)`,
	`"go" (NP)`,
}

// ScaleQueries are the three §6.3 Wikipedia queries. The Chocolate query
// uses v//pobj (descendant) where the paper prints v/pobj: our parser hangs
// pobj under the preposition ("type of chocolate" → is→type→of→chocolate),
// as the paper's own Example 3.1 tree does; the descendant axis preserves
// the query's intent (see EXPERIMENTS.md).
func ScaleQueries() map[string]*lang.Query {
	return map[string]*lang.Query{
		"Chocolate": lang.MustParse(`
			extract c:Entity from wiki.article if (
			/ROOT:{ v = //verb, o = v//pobj[text="chocolate"], s = v/nsubj } (s) in (c))
			satisfying v (str(v) ~ "is" {1})`),
		"Title": lang.MustParse(`
			extract a:Person, b:Str from wiki.article if (
			/ROOT:{ v = //"called", p = v/propn, b = p.subtree, c = a + ^ + v + ^ + b })`),
		"DateOfBirth": lang.MustParse(`
			extract a:Person, b:Date from wiki.article if (/ROOT:{v = verb})
			satisfying v (str(v) ~ "born" {1})`),
	}
}

// ScaleQueryOrder fixes the reporting order (low/medium/high selectivity).
var ScaleQueryOrder = []string{"Chocolate", "Title", "DateOfBirth"}
