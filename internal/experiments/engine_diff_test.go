package experiments

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// Property tests for the zero-allocation hot path: across the cafes, tweets,
// and HappyDB generators, the indexed engine (slot-based evaluation + DPLI
// merge joins), the same engine with Workers>1, and the naïve
// ground-truth evaluator must emit byte-identical tuples — values, order,
// and satisfying scores included. CI runs this under -race, which also
// proves the per-worker scratch shares nothing.

func requireSameTuples(t *testing.T, label string, a, b *engine.Result) {
	t.Helper()
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("%s: %d vs %d tuples", label, len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		ta, tb := &a.Tuples[i], &b.Tuples[i]
		if ta.Sid != tb.Sid || ta.Doc != tb.Doc {
			t.Fatalf("%s: tuple %d at sid=%d/doc=%d vs sid=%d/doc=%d",
				label, i, ta.Sid, ta.Doc, tb.Sid, tb.Doc)
		}
		if !reflect.DeepEqual(ta.Values, tb.Values) {
			t.Fatalf("%s: tuple %d values %q vs %q", label, i, ta.Values, tb.Values)
		}
		if !reflect.DeepEqual(ta.Scores, tb.Scores) {
			t.Fatalf("%s: tuple %d scores %v vs %v", label, i, ta.Scores, tb.Scores)
		}
	}
	if a.MatchedSentences != b.MatchedSentences {
		t.Fatalf("%s: MatchedSentences %d vs %d", label, a.MatchedSentences, b.MatchedSentences)
	}
}

func runDifferential(t *testing.T, label string, c *index.Corpus, dicts map[string]map[string]bool, queries []*lang.Query) {
	t.Helper()
	model := embed.NewModel()
	ix := index.Build(c)
	eng := engine.New(c, ix, model, engine.Options{Dicts: dicts})
	for qi, q := range queries {
		serial, err := eng.RunWith(q, engine.RunOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s q%d: %v", label, qi, err)
		}
		parallel, err := eng.RunWith(q, engine.RunOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s q%d: %v", label, qi, err)
		}
		naive, err := eng.RunNaive(q)
		if err != nil {
			t.Fatalf("%s q%d: %v", label, qi, err)
		}
		requireSameTuples(t, label+" serial-vs-parallel", serial, parallel)
		if serial.CandidateSentences != parallel.CandidateSentences {
			t.Fatalf("%s q%d: CandidateSentences %d vs %d",
				label, qi, serial.CandidateSentences, parallel.CandidateSentences)
		}
		// DPLI pruning is sound: the indexed run must reproduce the naïve
		// ground truth exactly (tuples, order, scores, matched sentences).
		requireSameTuples(t, label+" indexed-vs-naive", serial, naive)
		if serial.CandidateSentences > naive.CandidateSentences {
			t.Fatalf("%s q%d: more candidates (%d) than sentences (%d)",
				label, qi, serial.CandidateSentences, naive.CandidateSentences)
		}
	}
}

func TestHotPathDifferentialCafes(t *testing.T) {
	lc := corpus.GenCafes(corpus.BaristaMagConfig(3))
	runDifferential(t, "cafes", lc.Corpus, lc.Dicts, []*lang.Query{
		CafeQuery(0.8, true),
		CafeQuery(0.3, false),
	})
}

func TestHotPathDifferentialTweets(t *testing.T) {
	w := corpus.GenWNUT(corpus.WNUTConfig{Tweets: 250, Seed: 4})
	runDifferential(t, "tweets", w.Corpus, nil, []*lang.Query{
		TeamQuery(0.85),
		FacilityQuery(0.8),
	})
}

func TestHotPathDifferentialHappyDB(t *testing.T) {
	for _, seed := range []int64{5, 11} {
		c := corpus.GenHappyDB(300, seed)
		runDifferential(t, "happydb", c, nil, []*lang.Query{
			lang.MustParse(`extract d:Str, s:Str from "happydb" if (
				/ROOT:{ v = //verb, o = v/dobj, d = (o.subtree), s = "i" + ^ + v + ^ + o })`),
			lang.MustParse(`extract o:Str from "happydb" if (
				/ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
				satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`),
			lang.MustParse(`extract e:Entity, d:Str from "happydb" if (
				/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`),
		})
	}
}
