package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// GenSyntheticSpanOver is a convenience wrapper taking a pre-built corpus
// from any generator in this package.
func GenSyntheticSpanOver(c *index.Corpus, seed int64, perSetting int) []SpanQuery {
	r := rand.New(rand.NewSource(seed))
	var out []SpanQuery
	for _, atoms := range []int{1, 3, 5} {
		for k := 0; k < perSetting; k++ {
			q := sampleSpanQuery(c, r, atoms)
			if q == nil {
				continue
			}
			out = append(out, SpanQuery{Atoms: atoms, Query: q})
		}
	}
	return out
}

// SpanQuery is one SyntheticSpan benchmark query.
type SpanQuery struct {
	Atoms int // 1, 3, or 5
	Query *lang.Query
}

// GenSyntheticSpan generates the 300-query SyntheticSpan benchmark (§6.2.3):
// 100 span-variable queries each with 1, 3, and 5 atoms (0, 1, and 2
// skippable elastic spans respectively). Anchors are sampled from real
// sentences — tokens in surface order rendered as a word atom, a
// parse-label path, or a POS path — so every query has matches and varying
// selectivity.
func GenSyntheticSpan(c *index.Corpus, seed int64) []SpanQuery {
	return GenSyntheticSpanOver(c, seed, 100)
}

func sampleSpanQuery(c *index.Corpus, r *rand.Rand, atoms int) *lang.Query {
	nAnchors := (atoms + 1) / 2 // 1 -> 1, 3 -> 2, 5 -> 3
	for try := 0; try < 300; try++ {
		s := &c.Sentences[r.Intn(len(c.Sentences))]
		var content []int
		for i := range s.Tokens {
			if s.Tokens[i].POS != nlp.PosPunct {
				content = append(content, i)
			}
		}
		if len(content) < nAnchors+2 {
			continue
		}
		// Pick nAnchors increasing positions.
		perm := r.Perm(len(content))[:nAnchors]
		sortInts(perm)
		var anchors []string
		ok := true
		for _, pi := range perm {
			tid := content[pi]
			a := renderAnchor(s, tid, r)
			if a == "" {
				ok = false
				break
			}
			anchors = append(anchors, a)
		}
		if !ok {
			continue
		}
		expr := strings.Join(anchors, " + ^ + ")
		src := fmt.Sprintf("extract x:Str from bench if (/ROOT:{ x = %s })", expr)
		q, err := lang.Parse(src)
		if err != nil {
			continue
		}
		return q
	}
	return nil
}

// renderAnchor renders one sampled token as an atom: its word (50%), a
// descendant parse-label path (30%), or a POS path (20%).
func renderAnchor(s *nlp.Sentence, tid int, r *rand.Rand) string {
	tok := &s.Tokens[tid]
	switch p := r.Float64(); {
	case p < 0.5:
		if strings.ContainsAny(tok.Lower, `"\`) {
			return ""
		}
		return fmt.Sprintf("%q", tok.Lower)
	case p < 0.8:
		if tok.Label == "" || tok.Label == "root" {
			return "//" + "verb" // the root is always a plausible verb anchor
		}
		return "//" + tok.Label
	default:
		return "//" + tok.POS
	}
}
