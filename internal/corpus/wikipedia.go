package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/koko/index"
)

var (
	bioFirst = []string{
		"Alys", "Vera", "Cyd", "Walter", "Clara", "Edward", "Helen",
		"Oscar", "Ruth", "Simon", "Stella", "Victor", "Nina", "Leo",
		"Ida", "Frank", "Grace", "Henry", "Julia", "Mark",
	}
	bioLast = []string{
		"Charisse", "Thomas", "Adams", "Baker", "Carter", "Davis",
		"Evans", "Fisher", "Gray", "Hughes", "Jackson", "Kelly",
		"Lewis", "Morgan", "Nelson", "Parker", "Reed", "Stewart",
		"Turner", "Walker",
	}
	nicknames = []string{
		"Sid", "Ace", "Duke", "Bud", "Dot", "Kit", "Max", "Pip", "Rex", "Sal",
	}
	professions = []string{
		"actress", "writer", "engineer", "singer", "director", "chef",
		"teacher", "artist", "coach",
	}
	chocolateKinds = []string{
		"Baking chocolate", "Milk chocolate", "Dark chocolate",
		"White chocolate", "Couverture chocolate", "Ruby chocolate",
	}
	wikiCities = []string{
		"London", "Paris", "Berlin", "Rome", "Madrid", "Vienna", "Oslo",
		"Dublin", "Prague", "Lisbon",
	}
)

// WikiStats reports how many articles carry each §6.3 query target, so the
// selectivity bands (low <1%, medium ~10%, high >70%) are checkable.
type WikiStats struct {
	Articles    int
	Chocolate   int
	Title       int
	DateOfBirth int
}

// GenWikipedia generates n Wikipedia-like articles. Article mix: ~72%
// biographies (all with a birth-date sentence → high selectivity for the
// DateOfBirth query; ~14% also carry a "had been called" nickname sentence),
// ~27% place articles (a further ~5% of all articles carry a nickname
// construction about the place founder), and ~0.8% chocolate-type articles
// (low selectivity).
func GenWikipedia(n int, seed int64) (*index.Corpus, WikiStats) {
	r := rand.New(rand.NewSource(seed))
	var texts, names []string
	st := WikiStats{Articles: n}
	for i := 0; i < n; i++ {
		first := bioFirst[r.Intn(len(bioFirst))]
		last := bioLast[r.Intn(len(bioLast))]
		person := first + " " + last
		city := wikiCities[r.Intn(len(wikiCities))]
		year := 1880 + r.Intn(100)
		var sents []string
		roll := r.Float64()
		switch {
		case roll < 0.008:
			kind := chocolateKinds[r.Intn(len(chocolateKinds))]
			sents = append(sents,
				fmt.Sprintf("%s is a type of chocolate that is prepared for baking.", kind),
				fmt.Sprintf("Factories in %s produce it for pastry kitchens.", city),
				"Bakers melt it slowly over gentle heat.")
			st.Chocolate++
		case roll < 0.28:
			place := city + " " + []string{"Museum", "Station", "Park", "Library"}[r.Intn(4)]
			sents = append(sents,
				fmt.Sprintf("The %s opened in %d near the river.", place, year),
				fmt.Sprintf("Visitors arrive from %s every summer.", wikiCities[r.Intn(len(wikiCities))]))
			if r.Float64() < 0.18 {
				sents = append(sents, fmt.Sprintf("%s had been called %s by the founders.", place, nicknames[r.Intn(len(nicknames))]))
				st.Title++
			}
		default:
			prof := professions[r.Intn(len(professions))]
			sents = append(sents,
				fmt.Sprintf("%s was a famous %s from %s.", person, prof, city),
				fmt.Sprintf("%s was born in %d in %s.", person, year, city))
			if r.Float64() < 0.14 {
				sents = append(sents, fmt.Sprintf("%s had been called %s for years.", person, nicknames[r.Intn(len(nicknames))]))
				st.Title++
			}
			if r.Float64() < 0.4 {
				spouse := bioFirst[r.Intn(len(bioFirst))] + " " + bioLast[r.Intn(len(bioLast))]
				sents = append(sents,
					fmt.Sprintf("The couple had a daughter %s born in %d.", spouse, year+25))
			}
			st.DateOfBirth++
		}
		texts = append(texts, strings.Join(sents, " "))
		names = append(names, fmt.Sprintf("article-%06d", i))
	}
	return index.NewCorpus(names, texts), st
}
