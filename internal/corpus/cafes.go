package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/koko/index"
)

// Labeled is a generated corpus with planted ground truth.
type Labeled struct {
	Corpus *index.Corpus
	// Truth holds gold entity strings, lowercased.
	Truth map[string]bool
	// Dicts holds the dictionaries KOKO queries reference (dict("Location")).
	Dicts map[string]map[string]bool
	// TrainSplit marks document indexes belonging to the CRF training half.
	TrainSplit map[int]bool
}

// Name-part vocabularies for cafe names.
var (
	nameAdjs = []string{
		"Gravity", "Quiet", "Blue", "Harbor", "Golden", "Iron", "Velvet",
		"Copper", "Hidden", "Wild", "Silver", "Amber", "Cedar", "Drift",
		"Ember", "Stone", "River", "Static", "Paper", "Lunar", "Maple",
		"Nimbus", "Orbit", "Pine", "Salt", "Summit", "Tidal", "Umber",
		"Vesper", "Winter", "Aurora", "Basalt", "Canyon", "Dawn",
	}
	nameNouns = []string{
		"Owl", "Fox", "Anchor", "Fern", "Beans", "Sparrow", "Comet",
		"Harvest", "Meridian", "Compass", "Lantern", "Thistle", "Raven",
		"Bloom", "Current", "Ledger", "Mill", "Orchard", "Quill", "Signal",
		"Tandem", "Vessel", "Wren", "Atlas", "Breaker", "Crane", "Delta",
	}
	// cafeSuffixes are strong surface cues (weight-1 conditions in Fig 9).
	cafeSuffixes = []string{"Cafe", "Coffee", "Roasters"}

	coffeeDrinks = []string{
		"espresso", "cappuccinos", "macchiatos", "lattes", "cortados",
		"pour-over", "mocha",
	}
	fillerAdvs = []string{"up", "really", "consistently", "proudly", "quietly"}
	fillerAdjs = []string{
		"delicious", "smooth", "bright", "seasonal", "single-origin",
		"velvety", "nutty", "floral", "excellent",
	}
	cityNames = []string{
		"Portland", "Seattle", "Oakland", "Chicago", "Boston", "Austin",
		"Denver", "Brooklyn", "Melbourne", "Kyoto",
	}
	// districtNames are location-like distractors that accumulate weak
	// cafe evidence in the text ("the Alder District pours great espresso")
	// but are not cafes and are NOT in the Location dictionary — the
	// false positives that pull precision down at low thresholds, exactly
	// the mistakes the paper reports fighting with excluding clauses.
	districtNames = []string{
		"Alder District", "Pearl Quarter", "Dockside Row", "Elm Commons",
		"Foundry Block", "Garden Mile",
	}
	streetNames = []string{"Alder", "Mission", "Division", "Hawthorne", "Burnside", "Belmont"}
	brandNames  = []string{"La Marzocco", "Synesso", "Aeropress", "V60"}
)

// cafeProfile controls how much and what kind of evidence a planted cafe
// receives — the knob that creates the threshold/recall trade-off.
type cafeProfile int

const (
	profStrongName cafeProfile = iota // name contains Cafe/Coffee/Roasters
	profApposition                    // "X, a cafe" appears
	profParaphrase                    // several weak paraphrase evidence sentences
	profWeak                          // a single weak evidence sentence
)

// CafeCorpusConfig parameterizes the blog generator.
type CafeCorpusConfig struct {
	Articles     int
	CafesTotal   int
	SentsPer     int // sentences per article
	EvidencePer  int // paraphrase-evidence sentences per paraphrase cafe
	Seed         int64
	LongArticles bool // Sprudge-style: longer, more explicit evidence
}

// BaristaMagConfig sizes the corpus like the paper's BaristaMag scrape
// (84 articles, 137 labeled cafes, ~480 words/article).
func BaristaMagConfig(seed int64) CafeCorpusConfig {
	return CafeCorpusConfig{Articles: 84, CafesTotal: 137, SentsPer: 14, EvidencePer: 2, Seed: seed}
}

// SprudgeConfig sizes the corpus like Sprudge (1645 articles, 671 cafes,
// ~760 words/article: longer text with more explicit evidence, which is why
// descriptors add little there — Figure 5).
func SprudgeConfig(seed int64) CafeCorpusConfig {
	return CafeCorpusConfig{Articles: 1645, CafesTotal: 671, SentsPer: 22, EvidencePer: 4, Seed: seed, LongArticles: true}
}

// GenCafes generates a cafe-blog corpus with ground truth.
func GenCafes(cfg CafeCorpusConfig) *Labeled {
	r := rand.New(rand.NewSource(cfg.Seed))
	lc := &Labeled{
		Truth:      map[string]bool{},
		Dicts:      map[string]map[string]bool{"Location": {}},
		TrainSplit: map[int]bool{},
	}
	for _, city := range cityNames {
		lc.Dicts["Location"][strings.ToLower(city)] = true
	}

	// Invent distinct cafe names.
	names := make([]string, 0, cfg.CafesTotal)
	used := map[string]bool{}
	for len(names) < cfg.CafesTotal {
		n := nameAdjs[r.Intn(len(nameAdjs))] + " " + nameNouns[r.Intn(len(nameNouns))]
		if r.Float64() < 0.40 {
			n += " " + cafeSuffixes[r.Intn(len(cafeSuffixes))]
		}
		if used[n] {
			n += " " + cafeSuffixes[r.Intn(len(cafeSuffixes))]
			if used[n] {
				continue
			}
		}
		used[n] = true
		names = append(names, n)
		lc.Truth[strings.ToLower(n)] = true
	}

	// Distribute cafes over articles.
	perArticle := make([][]string, cfg.Articles)
	for i, n := range names {
		perArticle[i%cfg.Articles] = append(perArticle[i%cfg.Articles], n)
	}

	var texts, docNames []string
	for a := 0; a < cfg.Articles; a++ {
		var sents []string
		for _, cafe := range perArticle[a] {
			prof := pickProfile(r, cafe, cfg.LongArticles)
			sents = append(sents, cafeEvidence(r, cafe, prof, cfg.EvidencePer)...)
		}
		// Distractors and filler to reach the article length.
		for len(sents) < cfg.SentsPer {
			sents = append(sents, distractorSentence(r))
		}
		r.Shuffle(len(sents), func(i, j int) { sents[i], sents[j] = sents[j], sents[i] })
		texts = append(texts, strings.Join(sents, " "))
		docNames = append(docNames, fmt.Sprintf("post-%03d", a))
		if a%2 == 0 {
			lc.TrainSplit[a] = true
		}
	}
	lc.Corpus = index.NewCorpus(docNames, texts)
	return lc
}

func pickProfile(r *rand.Rand, cafe string, long bool) cafeProfile {
	hasCue := strings.Contains(cafe, "Cafe") || strings.Contains(cafe, "Coffee") || strings.Contains(cafe, "Roasters")
	if hasCue {
		return profStrongName
	}
	p := r.Float64()
	if long {
		// Longer articles spell things out: most cafes get an explicit
		// apposition ("X, a cafe"), so descriptor conditions add little —
		// the Figure 5 contrast with the short-article corpus.
		switch {
		case p < 0.75:
			return profApposition
		case p < 0.90:
			return profParaphrase
		default:
			return profWeak
		}
	}
	switch {
	case p < 0.15:
		return profApposition
	case p < 0.70:
		return profParaphrase
	default:
		return profWeak
	}
}

// cafeEvidence emits the sentences that mention a cafe.
func cafeEvidence(r *rand.Rand, cafe string, prof cafeProfile, evidencePer int) []string {
	var out []string
	intro := []string{
		fmt.Sprintf("%s opened downtown last month.", cafe),
		fmt.Sprintf("%s sits on a sunny corner in %s.", cafe, cityNames[r.Intn(len(cityNames))]),
		fmt.Sprintf("Locals already line the counter at %s.", cafe),
		fmt.Sprintf("There is a new cafe called %s on the east side.", cafe),
		fmt.Sprintf("We toured cafes such as %s last weekend.", cafe),
	}
	out = append(out, intro[r.Intn(len(intro))])
	switch prof {
	case profStrongName:
		out = append(out, weakEvidence(r, cafe))
	case profApposition:
		out = append(out, fmt.Sprintf("We stopped by %s, a cafe near the old mill.", cafe))
	case profParaphrase:
		for i := 0; i < evidencePer; i++ {
			out = append(out, weakEvidence(r, cafe))
		}
	case profWeak:
		out = append(out, weakEvidence(r, cafe))
	}
	return out
}

// weakEvidence emits one paraphrase-variation evidence sentence. The filler
// words inside the verb phrase are what defeat contiguous pattern matchers
// (IKE) while KOKO's gap-tolerant clause matching still scores them.
func weakEvidence(r *rand.Rand, cafe string) string {
	drink := coffeeDrinks[r.Intn(len(coffeeDrinks))]
	adj := fillerAdjs[r.Intn(len(fillerAdjs))]
	adv := fillerAdvs[r.Intn(len(fillerAdvs))]
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("%s serves %s %s %s.", cafe, adv, adj, drink)
	case 1:
		return fmt.Sprintf("%s pours %s %s all day.", cafe, adj, drink)
	case 2:
		return fmt.Sprintf("%s sells %s %s on weekends.", cafe, adj, drink)
	case 3:
		return fmt.Sprintf("%s hired the star barista from %s.", cafe, cityNames[r.Intn(len(cityNames))])
	case 4:
		return fmt.Sprintf("%s recently employed a champion barista.", cafe)
	case 5:
		// Contiguous phrasings — the cases rigid pattern matchers (IKE) can
		// still catch; most evidence carries filler words they cannot.
		return fmt.Sprintf("%s serves %s daily.", cafe, drink)
	case 6:
		return fmt.Sprintf("%s sells %s now.", cafe, drink)
	default:
		return fmt.Sprintf("The coffee menu at %s changes with the harvest.", cafe)
	}
}

// distractorSentence emits the noise families the paper's excluding clauses
// target, plus plain filler. Several distractors accumulate cafe-like
// evidence (cities that "serve great coffee", machine brands, festival
// names), which is what pushes precision down at low thresholds.
func distractorSentence(r *rand.Rand) string {
	city := cityNames[r.Intn(len(cityNames))]
	street := streetNames[r.Intn(len(streetNames))]
	brand := brandNames[r.Intn(len(brandNames))]
	drink := coffeeDrinks[r.Intn(len(coffeeDrinks))]
	district := districtNames[r.Intn(len(districtNames))]
	switch r.Intn(12) {
	case 0:
		return fmt.Sprintf("%s produces and sells the best coffee.", city)
	case 1:
		return fmt.Sprintf("The new cafe on %s Street has the best cup of %s.", street, drink)
	case 2:
		return fmt.Sprintf("The shop pulls shots on a %s machine.", brand)
	case 3:
		return fmt.Sprintf("Entries for the %s Barista Championship close soon.", city)
	case 4:
		return fmt.Sprintf("The %s Coffee Fest returns next spring.", city)
	case 5:
		return fmt.Sprintf("Visit the roastery at 120 %s Avenue for a tour.", street)
	case 6:
		return fmt.Sprintf("A barista described the %s as %s.", drink, fillerAdjs[r.Intn(len(fillerAdjs))])
	case 7:
		return fmt.Sprintf("We tasted %s %s from a %s farm.", fillerAdjs[r.Intn(len(fillerAdjs))], drink, []string{"Kenya", "Ethiopia", "Colombia"}[r.Intn(3)])
	case 8:
		return fmt.Sprintf("The crowd in %s loves a good harvest season.", city)
	case 9:
		// Weak-evidence false positives: districts that "serve" coffee.
		return fmt.Sprintf("The %s pours %s %s all week.", district, fillerAdjs[r.Intn(len(fillerAdjs))], drink)
	case 10:
		return fmt.Sprintf("%s sells %s %s at its weekend market.", district, fillerAdjs[r.Intn(len(fillerAdjs))], drink)
	default:
		return "The grinder hummed behind the counter all morning."
	}
}
