package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/koko/index"
)

var (
	happyFoods = []string{
		"chocolate cake", "cheesecake", "ice cream", "fresh bread",
		"a croissant", "a delicious pie", "seasonal cookies",
	}
	happyPeople = []string{
		"my family", "my daughter", "my son", "my best friend", "my wife",
		"my husband", "my brother",
	}
	happyPlaces = []string{
		"the park", "a grocery store", "the library", "a cozy cafe",
		"the museum", "the stadium",
	}
	happyEvents = []string{
		"won the spelling contest", "finished a long project",
		"received an award", "graduated from college",
		"completed a marathon", "started a new job",
	}
)

// GenHappyDB generates n happy-moment sentences (one per document, like the
// crowdsourced original). Sentence templates vary dependency-tree shape:
// plain transitive clauses, relative clauses, coordination, PPs.
func GenHappyDB(n int, seed int64) *index.Corpus {
	r := rand.New(rand.NewSource(seed))
	var texts, names []string
	for i := 0; i < n; i++ {
		food := happyFoods[r.Intn(len(happyFoods))]
		person := happyPeople[r.Intn(len(happyPeople))]
		place := happyPlaces[r.Intn(len(happyPlaces))]
		event := happyEvents[r.Intn(len(happyEvents))]
		var s string
		switch r.Intn(8) {
		case 0:
			s = fmt.Sprintf("I ate %s with %s.", food, person)
		case 1:
			s = fmt.Sprintf("I ate %s that I bought at %s.", food, place)
		case 2:
			s = fmt.Sprintf("My friend %s today and we celebrated together.", event)
		case 3:
			s = fmt.Sprintf("I visited %s and also ate %s.", place, food)
		case 4:
			s = fmt.Sprintf("I was happy because %s %s.", person, event)
		case 5:
			s = fmt.Sprintf("We walked to %s and enjoyed the quiet morning.", place)
		case 6:
			s = fmt.Sprintf("I made %s for %s, which was delicious.", food, person)
		default:
			s = fmt.Sprintf("Today I %s and felt really happy.", event)
		}
		texts = append(texts, s)
		names = append(names, fmt.Sprintf("moment-%06d", i))
	}
	return index.NewCorpus(names, texts)
}
