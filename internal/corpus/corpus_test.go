package corpus

import (
	"strings"
	"testing"

	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

func TestBaristaMagShape(t *testing.T) {
	lc := GenCafes(BaristaMagConfig(1))
	if lc.Corpus.NumDocs() != 84 {
		t.Errorf("docs = %d, want 84", lc.Corpus.NumDocs())
	}
	if got := len(lc.Truth); got != 137 {
		t.Errorf("cafes = %d, want 137", got)
	}
	// Ground-truth cafes must actually be recognizable entities somewhere.
	found := 0
	for sid := range lc.Corpus.Sentences {
		s := &lc.Corpus.Sentences[sid]
		for _, e := range s.Entities {
			if lc.Truth[strings.ToLower(e.Text)] {
				found++
				break
			}
		}
	}
	if found < lc.Corpus.NumDocs()/2 {
		t.Errorf("cafes recognized as entities in only %d sentences", found)
	}
	// Deterministic.
	lc2 := GenCafes(BaristaMagConfig(1))
	if lc2.Corpus.NumSentences() != lc.Corpus.NumSentences() {
		t.Error("generator not deterministic")
	}
	// Train split is half the docs.
	if n := len(lc.TrainSplit); n != 42 {
		t.Errorf("train split = %d, want 42", n)
	}
}

func TestSprudgeShape(t *testing.T) {
	cfg := SprudgeConfig(2)
	cfg.Articles = 100 // scaled for the test; the harness uses full size
	cfg.CafesTotal = 41
	lc := GenCafes(cfg)
	if lc.Corpus.NumDocs() != 100 || len(lc.Truth) != 41 {
		t.Errorf("docs=%d cafes=%d", lc.Corpus.NumDocs(), len(lc.Truth))
	}
	// Longer articles than BaristaMag.
	bm := GenCafes(BaristaMagConfig(2))
	if lc.Corpus.NumSentences()/lc.Corpus.NumDocs() <= bm.Corpus.NumSentences()/bm.Corpus.NumDocs() {
		t.Error("Sprudge articles not longer than BaristaMag")
	}
}

func TestWNUTShape(t *testing.T) {
	w := GenWNUT(WNUTConfig{Tweets: 500, Seed: 3})
	if w.Corpus.NumDocs() != 500 {
		t.Fatalf("docs = %d", w.Corpus.NumDocs())
	}
	if len(w.Teams) == 0 || len(w.Facilities) == 0 {
		t.Fatalf("teams=%d facilities=%d", len(w.Teams), len(w.Facilities))
	}
	// Every document is a single sentence (no cross-sentence evidence).
	for _, d := range w.Corpus.Docs {
		if d.NumSents > 1 {
			t.Errorf("tweet %s has %d sentences", d.Name, d.NumSents)
		}
	}
}

func TestHappyDB(t *testing.T) {
	c := GenHappyDB(200, 4)
	if c.NumDocs() != 200 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	for sid := range c.Sentences {
		if err := c.Sentences[sid].Validate(); err != nil {
			t.Fatalf("sentence %d: %v", sid, err)
		}
	}
}

func TestWikipediaSelectivities(t *testing.T) {
	c, st := GenWikipedia(3000, 5)
	if c.NumDocs() != 3000 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	choc := float64(st.Chocolate) / float64(st.Articles)
	title := float64(st.Title) / float64(st.Articles)
	dob := float64(st.DateOfBirth) / float64(st.Articles)
	if choc <= 0 || choc >= 0.03 {
		t.Errorf("chocolate selectivity = %.4f, want (0, 0.03) — paper: low <1%%", choc)
	}
	if title < 0.05 || title > 0.2 {
		t.Errorf("title selectivity = %.4f, want ≈0.1", title)
	}
	if dob < 0.6 {
		t.Errorf("dob selectivity = %.4f, want > 0.6", dob)
	}
}

func TestSyntheticTreeBenchmark(t *testing.T) {
	c := GenHappyDB(400, 6)
	qs := GenSyntheticTree(c, 7)
	if len(qs) != 350 {
		t.Fatalf("benchmark size = %d, want 350", len(qs))
	}
	// Count path/tree split and supported-by-SUBTREE style queries.
	paths, trees := 0, 0
	for _, q := range qs {
		if strings.HasPrefix(q.Setting, "path/") {
			paths++
		} else {
			trees++
		}
		if len(q.Query.Vars) == 0 {
			t.Fatalf("query with no vars: %s", q.Setting)
		}
	}
	if paths < 200 || trees < 80 {
		t.Errorf("paths=%d trees=%d", paths, trees)
	}
	// A good fraction must have nonzero ground-truth matches.
	matched := 0
	for _, q := range qs[:60] {
		for sid := range c.Sentences {
			s := &c.Sentences[sid]
			all := true
			for _, v := range q.Query.Vars {
				if len(engine.MatchPath(s, v.Steps)) == 0 {
					all = false
					break
				}
			}
			if all {
				matched++
				break
			}
		}
	}
	if matched < 40 {
		t.Errorf("only %d/60 sampled queries have matches", matched)
	}
}

func TestSyntheticSpanBenchmark(t *testing.T) {
	c := GenHappyDB(300, 8)
	qs := GenSyntheticSpan(c, 9)
	if len(qs) != 300 {
		t.Fatalf("benchmark size = %d, want 300", len(qs))
	}
	counts := map[int]int{}
	for _, q := range qs {
		counts[q.Atoms]++
		// Every query must reparse from its printed form.
		if _, err := lang.Parse(q.Query.String()); err != nil {
			t.Fatalf("query does not round-trip: %v\n%s", err, q.Query.String())
		}
	}
	if counts[1] != 100 || counts[3] != 100 || counts[5] != 100 {
		t.Errorf("atom distribution = %v", counts)
	}
}

// TestAllGeneratorsProduceValidTrees sweeps every generator and validates
// the dependency-tree invariants of every parsed sentence — the safety net
// that keeps generator changes from silently producing malformed parses.
func TestAllGeneratorsProduceValidTrees(t *testing.T) {
	bm := GenCafes(BaristaMagConfig(101))
	w := GenWNUT(WNUTConfig{Tweets: 300, Seed: 102})
	wiki, _ := GenWikipedia(300, 104)
	corpora := map[string]*index.Corpus{
		"baristamag": bm.Corpus,
		"wnut":       w.Corpus,
		"happydb":    GenHappyDB(300, 103),
		"wikipedia":  wiki,
	}
	for name, c := range corpora {
		for sid := 0; sid < c.NumSentences(); sid++ {
			s := c.Sentence(sid)
			if err := s.Validate(); err != nil {
				t.Fatalf("%s sentence %d: %v\n%q", name, sid, err, s.String())
			}
			if len(s.Tokens) == 0 {
				t.Fatalf("%s sentence %d empty", name, sid)
			}
		}
	}
}
