// Package corpus generates the synthetic stand-ins for every dataset the
// paper evaluates on, with planted ground truth, plus the two synthetic
// query benchmarks used by the index and GSP experiments.
//
// Datasets (DESIGN.md §1.2 documents each substitution):
//
//   - BaristaMag / Sprudge — cafe-blog corpora with rare-mention cafe names
//     whose identity is recoverable only by aggregating paraphrased evidence
//     ("serves up delicious cappuccinos", "hired the star barista"), plus
//     the distractor families the paper's excluding clauses target
//     (street addresses, festivals, championship names, espresso-machine
//     brands, locations). Sized like the originals: 84 articles / ~137
//     cafes and 1645 articles / ~671 cafes.
//   - WNUT — one-sentence tweets with labeled sports teams and facilities;
//     no cross-sentence evidence exists, reproducing the regime where
//     KOKO's aggregation cannot help (§6.1).
//   - HappyDB — short first-person happy moments (index experiments).
//   - Wikipedia — articles whose lead sentences carry the three §6.3 query
//     targets at the paper's selectivities: chocolate type definitions
//     (low, <1%), "had been called" nicknames (medium, ~10%), and
//     birth-date sentences (high, >70%).
//
// Query benchmarks:
//
//   - SyntheticTree — 350 node-variable queries over paths (length 2–5;
//     parse labels, +POS tags, +text; with/without wildcard; root-anchored
//     or not) and tree patterns (3–10 labels), sampled from real corpus
//     paths so selectivities vary (§6.2.2).
//   - SyntheticSpan — 300 span-variable queries with 1/3/5 atoms anchored
//     in real sentences (§6.2.3).
//
// Everything is deterministic given a seed.
package corpus
