package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines/indexing"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// BenchQuery is one SyntheticTree benchmark query with its setting label.
type BenchQuery struct {
	Setting string
	Query   *indexing.TreeQuery
}

// GenSyntheticTree generates the 350-query SyntheticTree benchmark over a
// parsed corpus (§6.2.2): 240 single-variable path queries — lengths 2–5 ×
// attribute mixes (parse labels; +POS tags; +text) × wildcard (with/without)
// × anchoring (root / non-root), 5 random queries per setting — plus 110
// multi-variable tree-pattern queries with 3–10 labels. Paths are sampled
// from real dependency trees so selectivities vary.
func GenSyntheticTree(c *index.Corpus, seed int64) []BenchQuery {
	r := rand.New(rand.NewSource(seed))
	var out []BenchQuery

	attrs := []string{"pl", "pl+pos", "pl+pos+text"}
	for _, length := range []int{2, 3, 4, 5} {
		for _, attr := range attrs {
			for _, wild := range []bool{false, true} {
				for _, rooted := range []bool{true, false} {
					setting := fmt.Sprintf("path/len=%d/attr=%s/wild=%v/root=%v", length, attr, wild, rooted)
					for k := 0; k < 5; k++ {
						q := samplePathQuery(c, r, length, attr, wild, rooted)
						if q == nil {
							continue
						}
						out = append(out, BenchQuery{Setting: setting, Query: q})
					}
				}
			}
		}
	}
	// Tree patterns: sizes 3–10, alternating attribute mixes, 5 each, until
	// the benchmark reaches 350 queries.
	sizes := []int{3, 4, 5, 6, 7, 8, 9, 10}
	for len(out) < 350 {
		progressed := false
		for _, size := range sizes {
			for _, attr := range []string{"pl", "pl+pos"} {
				if len(out) >= 350 {
					break
				}
				q := sampleTreeQuery(c, r, size, attr)
				if q == nil {
					continue
				}
				out = append(out, BenchQuery{
					Setting: fmt.Sprintf("tree/labels=%d/attr=%s", size, attr),
					Query:   q,
				})
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// samplePathQuery draws one path query by sampling a real token path.
func samplePathQuery(c *index.Corpus, r *rand.Rand, length int, attr string, wild, rooted bool) *indexing.TreeQuery {
	for try := 0; try < 200; try++ {
		s := &c.Sentences[r.Intn(len(c.Sentences))]
		if len(s.Tokens) == 0 {
			continue
		}
		tid := r.Intn(len(s.Tokens))
		path := s.PathFromRoot(tid)
		if len(path) < length {
			continue
		}
		var ids []int
		if rooted {
			ids = path[:length]
		} else {
			start := len(path) - length
			ids = path[start:]
		}
		steps := make([]lang.PathStep, length)
		for i, id := range ids {
			tok := &s.Tokens[id]
			st := lang.PathStep{Desc: false, Label: tok.Label}
			if i == 0 {
				if rooted {
					st.Label = "root"
				} else {
					st.Desc = true // non-root anchoring: leading descendant axis
				}
			}
			if attr != "pl" && i%2 == 1 {
				st.Label = tok.POS // mix in POS tags on alternating steps
			}
			steps[i] = st
		}
		if attr == "pl+pos+text" {
			last := &steps[length-1]
			last.Conds = append(last.Conds, lang.LabelCond{Key: "text", Value: s.Tokens[ids[length-1]].Lower})
		}
		if wild && length >= 3 {
			steps[1+r.Intn(length-2)].Label = "*"
		}
		return &indexing.TreeQuery{Vars: []indexing.PathVar{{Name: "a", Steps: steps}}}
	}
	return nil
}

// sampleTreeQuery draws a tree-pattern query: a connected subtree of a real
// dependency tree with `size` labels, expressed as one path variable per
// leaf (shared prefixes make the paths a tree).
func sampleTreeQuery(c *index.Corpus, r *rand.Rand, size int, attr string) *indexing.TreeQuery {
	for try := 0; try < 200; try++ {
		s := &c.Sentences[r.Intn(len(c.Sentences))]
		if len(s.Tokens) < size {
			continue
		}
		root := s.Root()
		if root < 0 {
			continue
		}
		// BFS from the root, keeping `size` tokens.
		picked := map[int]bool{root: true}
		queue := []int{root}
		for len(queue) > 0 && len(picked) < size {
			u := queue[0]
			queue = queue[1:]
			kids := s.Children(u)
			// Shuffle children deterministically for variety.
			perm := r.Perm(len(kids))
			for _, pi := range perm {
				k := kids[pi]
				if len(picked) >= size {
					break
				}
				if s.Tokens[k].POS == nlp.PosPunct {
					continue
				}
				picked[k] = true
				queue = append(queue, k)
			}
		}
		if len(picked) < size {
			continue
		}
		// Leaves of the picked set.
		var leaves []int
		for id := range picked {
			isLeaf := true
			for _, k := range s.Children(id) {
				if picked[k] {
					isLeaf = false
					break
				}
			}
			if isLeaf {
				leaves = append(leaves, id)
			}
		}
		if len(leaves) == 0 {
			continue
		}
		sortInts(leaves)
		q := &indexing.TreeQuery{}
		for vi, leaf := range leaves {
			path := s.PathFromRoot(leaf)
			steps := make([]lang.PathStep, len(path))
			for i, id := range path {
				tok := &s.Tokens[id]
				st := lang.PathStep{Desc: false, Label: tok.Label}
				if i == 0 {
					st.Label = "root"
				}
				if attr == "pl+pos" && i%2 == 1 {
					st.Label = tok.POS
				}
				steps[i] = st
			}
			q.Vars = append(q.Vars, indexing.PathVar{Name: fmt.Sprintf("v%d", vi), Steps: steps})
		}
		return q
	}
	return nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
