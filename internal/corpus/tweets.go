package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/koko/index"
)

var (
	// Team and facility names are built combinatorially so the CRF's
	// training half never sees every name — generalization has to come from
	// context and shape features, as with the real WNUT data.
	teamPrefixes = []string{
		"River", "North", "Bay", "Hill", "Iron", "West", "Storm", "Red",
		"Gold", "Pine", "East", "Lake",
	}
	teamAnimals = []string{
		"Tigers", "Sharks", "Falcons", "Rovers", "Comets", "Wolves",
		"Pilots", "Rapids", "Hornets", "Royals", "Chiefs", "Giants",
	}
	facilityAdjs = []string{
		"Riverside", "Harbor", "Union", "Memorial", "Grand", "Westside",
		"Civic", "Lakeview", "Central", "Summit", "Border", "Crescent",
	}
	facilityTypes = []string{
		"Stadium", "Museum", "Arena", "Station", "Park", "Library", "Gym",
		"Theater", "Mall", "Airport",
	}
	tweetTimes = []string{"7 pm", "8 pm", "noon", "9 am"}
	handles    = []string{"@coach", "@fanzone", "@citylife", "@gameday"}
)

// WNUTConfig parameterizes the tweet generator.
type WNUTConfig struct {
	Tweets int
	Seed   int64
}

// WNUT labels both categories on one corpus (the experiments extract teams
// and facilities separately over the same tweets).
type WNUT struct {
	Corpus     *index.Corpus
	Teams      map[string]bool
	Facilities map[string]bool
	TrainSplit map[int]bool
}

// GenWNUT generates a WNUT-like tweet corpus: one short sentence per
// document, so no cross-sentence evidence exists anywhere.
func GenWNUT(cfg WNUTConfig) *WNUT {
	if cfg.Tweets == 0 {
		cfg.Tweets = 800
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	w := &WNUT{
		Teams:      map[string]bool{},
		Facilities: map[string]bool{},
		TrainSplit: map[int]bool{},
	}
	mkTeam := func() string {
		return teamPrefixes[r.Intn(len(teamPrefixes))] + " " + teamAnimals[r.Intn(len(teamAnimals))]
	}
	mkFac := func() string {
		return facilityAdjs[r.Intn(len(facilityAdjs))] + " " + facilityTypes[r.Intn(len(facilityTypes))]
	}
	var texts, names []string
	for i := 0; i < cfg.Tweets; i++ {
		team := mkTeam()
		team2 := mkTeam()
		fac := mkFac()
		tm := tweetTimes[r.Intn(len(tweetTimes))]
		var s string
		switch r.Intn(16) {
		case 0:
			s = fmt.Sprintf("%s vs %s tonight at %s.", team, team2, tm)
			w.Teams[strings.ToLower(team)] = true
			w.Teams[strings.ToLower(team2)] = true
		case 1:
			s = fmt.Sprintf("go %s beat the %s.", team, team2)
			w.Teams[strings.ToLower(team)] = true
		case 2:
			s = fmt.Sprintf("%s to host the soccer final this weekend.", team)
			w.Teams[strings.ToLower(team)] = true
		case 3:
			// Labeled team mentioned in a construction none of the
			// Figure 11 conditions reach — a recall ceiling for everyone.
			s = fmt.Sprintf("what a comeback by the %s last night.", team)
			w.Teams[strings.ToLower(team)] = true
		case 4:
			s = fmt.Sprintf("we are at %s for the show.", fac)
			w.Facilities[strings.ToLower(fac)] = true
		case 5:
			s = fmt.Sprintf("went to %s with the kids today.", fac)
			w.Facilities[strings.ToLower(fac)] = true
		case 6:
			s = fmt.Sprintf("you should go to %s this weekend.", fac)
			w.Facilities[strings.ToLower(fac)] = true
		case 7:
			s = fmt.Sprintf("meet me at %s at %s.", fac, tm)
			w.Facilities[strings.ToLower(fac)] = true
		case 8:
			// Unreachable facility mention (recall ceiling).
			s = fmt.Sprintf("%s looks beautiful tonight.", fac)
			w.Facilities[strings.ToLower(fac)] = true
		case 9:
			// Cross-category confusion: a team after "at" (a facility
			// false positive for pattern matchers).
			s = fmt.Sprintf("screaming at %s fans on the bus.", team)
			w.Teams[strings.ToLower(team)] = true
		case 10:
			s = fmt.Sprintf("%s says the match starts at %s.", handles[r.Intn(len(handles))], tm)
		case 11:
			s = fmt.Sprintf("traffic was terrible downtown today at %s.", tm)
		case 12:
			s = fmt.Sprintf("so happy about tomorrow's %s game.", strings.ToLower(team))
		case 13:
			// Capitalized non-entity after "at" (precision noise for all).
			s = fmt.Sprintf("stuck at Gate %d again.", 2+r.Intn(20))
		case 14:
			s = fmt.Sprintf("brunch at Mels with the team was great.")
		default:
			s = "what a beautiful morning for a long walk."
		}
		texts = append(texts, s)
		names = append(names, fmt.Sprintf("tweet-%04d", i))
		if i%2 == 0 {
			w.TrainSplit[i] = true
		}
	}
	w.Corpus = index.NewCorpus(names, texts)
	return w
}
