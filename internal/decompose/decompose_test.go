package decompose

import (
	"testing"

	"repro/internal/nlp"
)

func clauseWords(cs []Clause) [][]string {
	out := make([][]string, len(cs))
	for i, c := range cs {
		out[i] = c.Words
	}
	return out
}

func TestDecomposeSimple(t *testing.T) {
	s := nlp.AnnotateSentence(0, "Anna ate some delicious cheesecake.")
	cs := Decompose(&s)
	if len(cs) != 1 {
		t.Fatalf("got %d clauses, want 1: %v", len(cs), clauseWords(cs))
	}
	if cs[0].Score != 1.0 {
		t.Errorf("main clause score = %v", cs[0].Score)
	}
	if !cs[0].ContainsSequence([]string{"anna", "ate", "cheesecake"}) {
		t.Errorf("clause words = %v", cs[0].Words)
	}
}

func TestDecomposeRelativeClause(t *testing.T) {
	s := nlp.AnnotateSentence(0, "Anna ate some delicious cheesecake that she bought at a grocery store.")
	cs := Decompose(&s)
	if len(cs) != 2 {
		t.Fatalf("got %d clauses, want 2: %v", len(cs), clauseWords(cs))
	}
	main, sub := cs[0], cs[1]
	if main.Score != 1.0 || sub.Score != 0.8 {
		t.Errorf("scores = %v, %v", main.Score, sub.Score)
	}
	// Main clause keeps the object but not the relative clause's verb.
	if !main.ContainsSequence([]string{"anna", "ate", "cheesecake"}) {
		t.Errorf("main = %v", main.Words)
	}
	if main.ContainsSequence([]string{"bought"}) {
		t.Errorf("main leaked subordinate verb: %v", main.Words)
	}
	// Subordinate clause keeps its governor noun so "bought ... store" and
	// the modified noun are matchable.
	if !sub.ContainsSequence([]string{"she", "bought"}) || !sub.ContainsSequence([]string{"bought", "store"}) {
		t.Errorf("sub = %v", sub.Words)
	}
	if !sub.ContainsSequence([]string{"cheesecake"}) {
		t.Errorf("sub missing governor noun: %v", sub.Words)
	}
}

func TestDecomposeCoordination(t *testing.T) {
	s := nlp.AnnotateSentence(0, "I ate a chocolate ice cream, which was delicious, and also ate a pie.")
	cs := Decompose(&s)
	if len(cs) != 3 {
		t.Fatalf("got %d clauses, want 3: %v", len(cs), clauseWords(cs))
	}
	// Clause roots in order: ate(1) main, was(8) rcmod, ate(13) conj.
	if cs[0].Score != 1.0 || cs[1].Score != 0.8 || cs[2].Score != 0.9 {
		t.Errorf("scores = %v %v %v", cs[0].Score, cs[1].Score, cs[2].Score)
	}
	if !cs[1].ContainsSequence([]string{"which", "was", "delicious"}) {
		t.Errorf("rcmod clause = %v", cs[1].Words)
	}
	// The conj clause inherits the shared subject "I".
	if !cs[2].ContainsSequence([]string{"i", "ate", "pie"}) {
		t.Errorf("conj clause = %v", cs[2].Words)
	}
	// The main clause must not contain the pie.
	if cs[0].ContainsSequence([]string{"pie"}) {
		t.Errorf("main clause leaked conj material: %v", cs[0].Words)
	}
}

func TestDecomposeNoVerb(t *testing.T) {
	s := nlp.AnnotateSentence(0, "cities in asian countries such as China and Japan.")
	cs := Decompose(&s)
	if len(cs) != 1 {
		t.Fatalf("got %d clauses: %v", len(cs), clauseWords(cs))
	}
	if cs[0].Score != 1.0 {
		t.Errorf("score = %v", cs[0].Score)
	}
}

func TestContainsSequence(t *testing.T) {
	words := []string{"the", "cafe", "serves", "really", "great", "coffee"}
	cases := []struct {
		seq  []string
		want bool
	}{
		{[]string{"serves", "coffee"}, true},
		{[]string{"serves", "great", "coffee"}, true},
		{[]string{"coffee", "serves"}, false},
		{[]string{"cafe"}, true},
		{[]string{"espresso"}, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := ContainsSequence(words, tc.seq); got != tc.want {
			t.Errorf("ContainsSequence(%v) = %v, want %v", tc.seq, got, tc.want)
		}
	}
}

func TestDecomposeEmpty(t *testing.T) {
	s := nlp.Sentence{}
	if cs := Decompose(&s); cs != nil {
		t.Errorf("empty sentence: %v", cs)
	}
}
