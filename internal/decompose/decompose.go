// Package decompose is the sentence-decomposition substrate of the KOKO
// reproduction.
//
// The paper's descriptor evaluation (§4.4.1(b)) segments each sentence into
// canonical clauses before matching expanded descriptors against them,
// reusing stage (1) of the clause-splitting of Angeli et al. / Stanford
// OpenIE: "segment a sentence into canonical clauses". This package performs
// that segmentation over the dependency trees produced by the nlp substrate:
// every clausal verb (the root verb, coordinated verbs, relative-clause
// verbs, clausal complements) roots one canonical clause consisting of its
// subtree minus any nested clausal subtrees; each clause carries a confidence
// score l_j that discounts subordinate material, mirroring the paper's
// (c_j, l_j) pairs.
package decompose

import (
	"sort"

	"repro/internal/nlp"
)

// Clause is a canonical clause: a subset of a sentence's tokens with a
// confidence score.
type Clause struct {
	Root   int   // token id of the clause root
	Tokens []int // sorted token ids belonging to this clause
	Score  float64
	Words  []string // lowercase words of the clause in order (no punctuation)
}

// Clause scores by clausal relation, mirroring the intuition that material
// closer to the main assertion is stronger evidence.
const (
	scoreMain  = 1.0
	scoreConj  = 0.9
	scoreRcmod = 0.8
	scoreOther = 0.7
)

// Decompose segments a parsed sentence into canonical clauses. A sentence
// with no clausal structure yields a single clause covering every token with
// score 1.
func Decompose(s *nlp.Sentence) []Clause {
	n := len(s.Tokens)
	if n == 0 {
		return nil
	}
	root := s.Root()

	// Identify clause roots: the sentence root plus every verb attached by a
	// clausal relation.
	isClauseRoot := make([]bool, n)
	score := make([]float64, n)
	isClauseRoot[root] = true
	score[root] = scoreMain
	for i := range s.Tokens {
		t := &s.Tokens[i]
		if i == root {
			continue
		}
		switch t.Label {
		case nlp.LblConj:
			if t.POS == nlp.PosVerb {
				isClauseRoot[i] = true
				score[i] = scoreConj
			}
		case nlp.LblRcmod:
			isClauseRoot[i] = true
			score[i] = scoreRcmod
		case nlp.LblXcomp:
			isClauseRoot[i] = true
			score[i] = scoreOther
		}
	}

	// Assign each token to its nearest clause-root ancestor (or itself).
	owner := make([]int, n)
	for i := 0; i < n; i++ {
		o := i
		for !isClauseRoot[o] {
			h := s.Tokens[o].Head
			if h < 0 {
				break
			}
			o = h
		}
		owner[i] = o
	}

	// A clause also includes the head noun its relative clause modifies
	// ("cheesecake that she bought" — the rcmod clause should contain
	// "cheesecake" so that descriptors like "bought cheesecake" can match).
	// We add the governor token of subordinate clause roots to the clause.
	extra := map[int][]int{}
	for i := 0; i < n; i++ {
		if isClauseRoot[i] && i != root {
			if h := s.Tokens[i].Head; h >= 0 {
				extra[i] = append(extra[i], h)
			}
		}
	}
	// Conjoined verbs share the subject of their first conjunct ("Anna ate
	// and drank": the conj clause gets "Anna").
	for i := 0; i < n; i++ {
		if isClauseRoot[i] && s.Tokens[i].Label == nlp.LblConj {
			h := s.Tokens[i].Head
			if h >= 0 {
				for _, c := range s.Children(h) {
					if s.Tokens[c].Label == nlp.LblNsubj {
						extra[i] = append(extra[i], c)
						// Include the whole subject NP.
						for t := s.Tokens[c].SubL; t <= s.Tokens[c].SubR; t++ {
							extra[i] = append(extra[i], t)
						}
					}
				}
			}
		}
	}

	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		byRoot[owner[i]] = append(byRoot[owner[i]], i)
	}
	for r, xs := range extra {
		byRoot[r] = append(byRoot[r], xs...)
	}

	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	out := make([]Clause, 0, len(roots))
	for _, r := range roots {
		toks := dedupSorted(byRoot[r])
		c := Clause{Root: r, Tokens: toks, Score: score[r]}
		for _, t := range toks {
			if s.Tokens[t].POS != nlp.PosPunct {
				c.Words = append(c.Words, s.Tokens[t].Lower)
			}
		}
		if len(c.Words) == 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ContainsSequence reports whether the clause contains the given lowercase
// word sequence in order, allowing gaps (the paper's occurrence test: "c
// contains the words y1..yq in this order and each consecutive pair may be
// separated by 0 or more words").
func (c *Clause) ContainsSequence(seq []string) bool {
	return ContainsSequence(c.Words, seq)
}

// ContainsSequence is the gap-tolerant subsequence test over word lists.
func ContainsSequence(words, seq []string) bool {
	if len(seq) == 0 {
		return false
	}
	i := 0
	for _, w := range words {
		if w == seq[i] {
			i++
			if i == len(seq) {
				return true
			}
		}
	}
	return false
}

func dedupSorted(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
