// Command kokogen materializes the synthetic corpora as plain-text files so
// they can be indexed with `koko index` or inspected directly. Ground truth
// is written alongside as one-entity-per-line .truth files.
//
//	kokogen -dataset cafes -out ./data -n 84
//	kokogen -dataset tweets -out ./data -n 800
//	kokogen -dataset happydb -out ./data -n 10000
//	kokogen -dataset wikipedia -out ./data -n 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/koko/index"
)

func main() {
	dataset := flag.String("dataset", "cafes", "cafes | sprudge | tweets | happydb | wikipedia")
	out := flag.String("out", "data", "output directory")
	n := flag.Int("n", 0, "size override (documents); 0 = dataset default")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	switch *dataset {
	case "cafes":
		cfg := corpus.BaristaMagConfig(*seed)
		if *n > 0 {
			cfg.Articles = *n
			cfg.CafesTotal = *n * 137 / 84
		}
		lc := corpus.GenCafes(cfg)
		writeCorpus(*out, "baristamag", lc.Corpus)
		writeTruth(*out, "baristamag", lc.Truth)
	case "sprudge":
		cfg := corpus.SprudgeConfig(*seed)
		if *n > 0 {
			cfg.Articles = *n
			cfg.CafesTotal = *n * 671 / 1645
		}
		lc := corpus.GenCafes(cfg)
		writeCorpus(*out, "sprudge", lc.Corpus)
		writeTruth(*out, "sprudge", lc.Truth)
	case "tweets":
		w := corpus.GenWNUT(corpus.WNUTConfig{Tweets: orDefault(*n, 800), Seed: *seed})
		writeCorpus(*out, "tweets", w.Corpus)
		writeTruth(*out, "tweets-teams", w.Teams)
		writeTruth(*out, "tweets-facilities", w.Facilities)
	case "happydb":
		c := corpus.GenHappyDB(orDefault(*n, 10000), *seed)
		writeCorpus(*out, "happydb", c)
	case "wikipedia":
		c, st := corpus.GenWikipedia(orDefault(*n, 5000), *seed)
		writeCorpus(*out, "wikipedia", c)
		fmt.Printf("selectivities: chocolate=%.4f title=%.4f dob=%.4f\n",
			float64(st.Chocolate)/float64(st.Articles),
			float64(st.Title)/float64(st.Articles),
			float64(st.DateOfBirth)/float64(st.Articles))
	default:
		fail(fmt.Errorf("unknown dataset %q", *dataset))
	}
}

func orDefault(n, d int) int {
	if n > 0 {
		return n
	}
	return d
}

// writeCorpus writes one file per document.
func writeCorpus(dir, name string, c *index.Corpus) {
	sub := filepath.Join(dir, name)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		fail(err)
	}
	for d := 0; d < c.NumDocs(); d++ {
		first, end := c.DocSentences(d)
		var b strings.Builder
		for sid := first; sid < end; sid++ {
			b.WriteString(c.Sentence(sid).String())
			b.WriteByte('\n')
		}
		path := filepath.Join(sub, fmt.Sprintf("%s.txt", c.Docs[d].Name))
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Printf("wrote %d documents to %s\n", c.NumDocs(), sub)
}

func writeTruth(dir, name string, truth map[string]bool) {
	keys := make([]string, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	path := filepath.Join(dir, name+".truth")
	if err := os.WriteFile(path, []byte(strings.Join(keys, "\n")+"\n"), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d gold entities to %s\n", len(keys), path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kokogen:", err)
	os.Exit(1)
}
