package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/internal/server"
	"repro/koko"
	"repro/koko/remote"
)

// distBench measures what hedged requests buy under a slow worker: a
// coordinator-side remote engine fans shard evaluations over two
// in-process worker services, with the fault injector making one worker's
// responses sporadically slow (a deterministic stand-in for a node with a
// noisy neighbour). The same query stream runs with hedging off and with a
// fixed hedge delay; the snapshot records p50/p99 for both — the p99 gap
// is the fault-tolerance payoff the distributed design exists for.
//
//	kokobench -exp dist -iters 3 > BENCH_dist.json

const (
	distBenchShards   = 4
	distBenchReplicas = 2
	// distBenchDelay is the injected per-attempt slowdown on the degraded
	// worker; distBenchDelayProb keeps it a tail event (hits p99, not p50).
	distBenchDelay     = 40 * time.Millisecond
	distBenchDelayProb = 0.12
	// distBenchHedge is the fixed hedge delay for the hedged run — well
	// under the injected delay, well over a healthy shard eval.
	distBenchHedge = 12 * time.Millisecond
)

const distBenchQuery = `extract x:Entity from "blogs" if ()
	satisfying x
	(str(x) contains "Cafe" {0.6}) or
	(x [["serves coffee"]] {0.3}) or
	(x [["hired barista"]] {0.3})
	with threshold 0.5`

type distConfigStats struct {
	Queries     int     `json:"queries"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	HedgesFired int64   `json:"hedges_fired"`
	HedgeWins   int64   `json:"hedge_wins"`
	Retries     int64   `json:"retries"`
}

type distSnapshot struct {
	Workload     string          `json:"workload"`
	Note         string          `json:"note"`
	GoMaxProc    int             `json:"gomaxprocs"`
	Shards       int             `json:"shards"`
	Replicas     int             `json:"replicas"`
	SlowDelayMs  float64         `json:"slow_delay_ms"`
	SlowProb     float64         `json:"slow_prob"`
	HedgeAfterMs float64         `json:"hedge_after_ms"`
	NoHedge      distConfigStats `json:"no_hedge"`
	Hedge        distConfigStats `json:"hedge"`
	P99Ratio     float64         `json:"p99_hedge_vs_no_hedge"`
	Tuples       int             `json:"tuples"`
}

// distWorker brings up one in-process kokod worker serving the sharded
// cafes corpus over real HTTP.
func distWorker(c *koko.Corpus) *httptest.Server {
	svc := server.NewService(server.Config{MaxConcurrent: distBenchShards})
	check(svc.Registry().Register("cafes", koko.NewShardedEngine(c, distBenchShards, nil)))
	return httptest.NewServer(svc.Handler())
}

// distRun drives n queries through a fresh remote engine with the given
// hedge setting, the second worker degraded by the fault policy.
func distRun(c *koko.Corpus, nodes []string, slow string, hedge time.Duration, n int) (distConfigStats, int) {
	fp := remote.NewFaultPolicy(42)
	fp.Set(slow, remote.NodeFaults{DelayProb: distBenchDelayProb, Delay: distBenchDelay})
	pool := remote.NewPool(remote.PoolConfig{
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    3,
		HedgeAfter:     hedge,
		Fault:          fp,
	})
	eng := remote.NewEngine(pool, remote.EngineConfig{
		Corpus:    "cafes",
		Placement: koko.BuildPlacement(distBenchShards, nodes, distBenchReplicas),
		Meta:      remote.Meta{Documents: c.NumDocuments(), Sentences: c.NumSentences()},
	})
	p, err := koko.ParseQuery(distBenchQuery)
	check(err)

	evaluate := func() *koko.Result {
		seq, err := eng.Run(context.Background(), p, nil)
		check(err)
		res, err := seq.Collect()
		check(err)
		return res
	}
	// Warm connections and worker-side caches before timing.
	warm := evaluate()
	ms := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		evaluate()
		ms = append(ms, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	ctr := pool.Counters()
	out := summarizeLatenciesDist(ms)
	out.HedgesFired = ctr.HedgesFired.Load()
	out.HedgeWins = ctr.HedgeWins.Load()
	out.Retries = ctr.Retries.Load()
	return out, len(warm.Tuples)
}

func summarizeLatenciesDist(ms []float64) distConfigStats {
	out := distConfigStats{Queries: len(ms)}
	out.P50Ms = percentile(ms, 0.50)
	out.P99Ms = percentile(ms, 0.99)
	for _, v := range ms {
		if v > out.MaxMs {
			out.MaxMs = v
		}
	}
	return out
}

func distBench(iters int) {
	if iters < 1 {
		iters = 1
	}
	c := koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus)
	w1 := distWorker(c)
	defer w1.Close()
	w2 := distWorker(c)
	defer w2.Close()
	nodes := []string{w1.URL, w2.URL}

	n := 100 * iters
	noHedge, tuples := distRun(c, nodes, w2.URL, -1, n)
	hedged, _ := distRun(c, nodes, w2.URL, distBenchHedge, n)

	snap := distSnapshot{
		Workload: fmt.Sprintf("cafes corpus, %d shards x %d replicas over 2 in-process workers, one worker delayed %v with prob %.2f",
			distBenchShards, distBenchReplicas, distBenchDelay, distBenchDelayProb),
		Note: "same query stream with hedging off vs a fixed hedge delay; " +
			"p99_hedge_vs_no_hedge < 1 means hedging cut the slow-worker tail",
		GoMaxProc:    runtime.GOMAXPROCS(0),
		Shards:       distBenchShards,
		Replicas:     distBenchReplicas,
		SlowDelayMs:  float64(distBenchDelay.Nanoseconds()) / 1e6,
		SlowProb:     distBenchDelayProb,
		HedgeAfterMs: float64(distBenchHedge.Nanoseconds()) / 1e6,
		NoHedge:      noHedge,
		Hedge:        hedged,
		Tuples:       tuples,
	}
	if noHedge.P99Ms > 0 {
		snap.P99Ratio = hedged.P99Ms / noHedge.P99Ms
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(snap))
}
