package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/koko/index"
	"repro/internal/server"
	"repro/koko"
)

// serverLoad drives the kokod service layer under concurrent load: two
// registered corpora, a mixed query workload from parallel clients, with
// and without the result cache — the load-smoke companion to the paper's
// single-query Table 2 breakdown.
func serverLoad(seed int64, scale int) {
	header("Server — concurrent query service over the corpus registry")
	if scale < 1 {
		scale = 1
	}

	svc := server.NewService(server.Config{MaxConcurrent: 8, CacheSize: 256})
	reg := svc.Registry()
	check(reg.Register("cafes", engineFromIndexed(corpus.GenCafes(corpus.BaristaMagConfig(seed)).Corpus)))
	check(reg.Register("happy", engineFromIndexed(corpus.GenHappyDB(500*scale, seed+1))))

	for _, info := range reg.List() {
		fmt.Printf("registered %-6s docs=%d sentences=%d\n", info.Name, info.Documents, info.Sentences)
	}

	queries := []server.QueryRequest{
		{Corpus: "cafes", Query: `extract x:Entity from "posts" if ()
			satisfying x (str(x) contains "Cafe" {0.6}) or (x [["serves coffee"]] {0.4})
			with threshold 0.5`},
		{Corpus: "happy", Query: `extract e:Entity, d:Str from "moments" if
			(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`},
		{Corpus: "happy", Query: `extract x:Str from "moments" if
			(/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`},
	}

	const clients = 8
	const perClient = 25
	run := func(noCache bool) (time.Duration, server.MetricsSnapshot) {
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					req := queries[(c+i)%len(queries)]
					req.NoCache = noCache
					if _, err := svc.Query(context.Background(), req); err != nil {
						check(err)
					}
				}
			}(c)
		}
		wg.Wait()
		return time.Since(t0), svc.Metrics()
	}

	elapsedCold, _ := run(true)
	total := clients * perClient
	fmt.Printf("\n%-18s %5d queries  %8.1f q/s  (%v)\n", "no cache:",
		total, float64(total)/elapsedCold.Seconds(), elapsedCold.Round(time.Millisecond))

	before := svc.Metrics()
	elapsedWarm, after := run(false)
	hits := after.CacheHits - before.CacheHits
	fmt.Printf("%-18s %5d queries  %8.1f q/s  (%v), cache hits %d/%d\n", "with cache:",
		total, float64(total)/elapsedWarm.Seconds(), elapsedWarm.Round(time.Millisecond), hits, total)
	fmt.Printf("peak in-flight %d, engine time %.1fms over %d misses\n",
		after.PeakInFlight, after.QueryMillisTotal, after.CacheMisses)
}

// engineFromIndexed builds a public engine directly over an already-parsed
// generator corpus (koko.WrapCorpus skips re-rendering and re-parsing the
// documents).
func engineFromIndexed(c *index.Corpus) *koko.Engine {
	return koko.NewEngine(koko.WrapCorpus(c), nil)
}
