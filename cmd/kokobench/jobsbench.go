package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/server/jobs"
	"repro/koko"
)

// jobsBench measures the batch/interactive split the jobs subsystem exists
// for: a heavy query batch runs as an async job (shard-at-a-time on the
// shared worker pool) while light interactive queries keep arriving. The
// snapshot records batch throughput (shard evaluations per second) next to
// interactive tail latency with and without the job running — the number
// that shows whether shard-at-a-time scheduling actually keeps the
// interactive path responsive.
//
//	kokobench -exp jobs -iters 3 > BENCH_jobs.json

const (
	jobsBenchSents   = 2000
	jobsBenchShards  = 4
	jobsBenchQueries = 4 // per job: shard evals = queries × shards
)

// jobsBenchInteractive is the light probe query (index-pruned, small
// result) standing in for a human-facing request.
const jobsBenchInteractive = `extract x:Str from "moments" if
	(/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`

type jobsLatencies struct {
	Queries int     `json:"queries"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

type jobsJobStats struct {
	Queries      int     `json:"queries"`
	Shards       int     `json:"shards"`
	ShardEvals   int     `json:"shard_evals"`
	WallMs       float64 `json:"wall_ms"`
	ShardsPerSec float64 `json:"shards_per_sec"`
	Tuples       int     `json:"tuples"`
}

type jobsSnapshot struct {
	Workload   string        `json:"workload"`
	Note       string        `json:"note"`
	GoMaxProc  int           `json:"gomaxprocs"`
	Pool       int           `json:"pool"`
	Baseline   jobsLatencies `json:"interactive_baseline"`
	WithJob    jobsLatencies `json:"interactive_with_job"`
	Job        jobsJobStats  `json:"job"`
	P99RatioVs float64       `json:"p99_with_job_vs_baseline"`
}

func percentile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func summarizeLatencies(ms []float64) jobsLatencies {
	out := jobsLatencies{Queries: len(ms)}
	out.P50Ms = percentile(ms, 0.50)
	out.P99Ms = percentile(ms, 0.99)
	for _, v := range ms {
		if v > out.MaxMs {
			out.MaxMs = v
		}
	}
	return out
}

func jobsBench(iters int) {
	if iters < 1 {
		iters = 1
	}
	pool := runtime.GOMAXPROCS(0)
	svc := server.NewService(server.Config{MaxConcurrent: pool, CacheSize: -1})
	c := koko.WrapCorpus(corpus.GenHappyDB(jobsBenchSents, experiments.HotPathCorpusSeed))
	check(svc.Registry().Register("happy", koko.NewShardedEngine(c, jobsBenchShards, nil)))

	interactive := server.QueryRequest{Corpus: "happy", Query: jobsBenchInteractive, NoCache: true}
	probe := func(n int) []float64 {
		ms := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if _, err := svc.Query(context.Background(), interactive); err != nil {
				check(err)
			}
			ms = append(ms, float64(time.Since(t0).Nanoseconds())/1e6)
		}
		return ms
	}

	// Warm the engines (first evaluation pays one-time caches), then take
	// the no-job baseline.
	probe(3)
	nProbe := 50 * iters
	baseline := summarizeLatencies(probe(nProbe))

	// Submit the batch job and probe interactive latency while it runs.
	batch := make([]string, jobsBenchQueries)
	for i := range batch {
		batch[i] = experiments.HotPathExtractQuery
	}
	t0 := time.Now()
	st, err := svc.Jobs().Submit(jobs.Spec{Corpus: "happy", Queries: batch})
	check(err)
	// Probe before checking for termination so even a job that finishes
	// within one probe contributes at least one with-job sample — an empty
	// series would render as "p99 = 0ms", which reads as no interference
	// rather than no data.
	var during []float64
	for {
		tq := time.Now()
		if _, err := svc.Query(context.Background(), interactive); err != nil {
			check(err)
		}
		during = append(during, float64(time.Since(tq).Nanoseconds())/1e6)
		cur, err := svc.Jobs().Get(st.ID)
		check(err)
		if cur.State.Terminal() {
			break
		}
	}
	wall := time.Since(t0)
	final, err := svc.Jobs().Get(st.ID)
	check(err)
	if final.State != jobs.StateDone {
		check(fmt.Errorf("jobs bench: job finished %s (%s)", final.State, final.Error))
	}
	res, err := svc.Jobs().Results(st.ID)
	check(err)
	tuples := 0
	for _, q := range res.Queries {
		tuples += len(q.Result.Tuples)
	}

	snap := jobsSnapshot{
		Workload: fmt.Sprintf("GenHappyDB(%d, %d) in %d shards; job = %d × hotpath extract query; interactive probe = light dobj-subtree extract",
			jobsBenchSents, experiments.HotPathCorpusSeed, jobsBenchShards, jobsBenchQueries),
		Note: "refresh with `go run ./cmd/kokobench -exp jobs -iters 3 > BENCH_jobs.json`; " +
			"interactive_with_job probes run while the job occupies the shared pool shard-at-a-time; " +
			"p99 on a 1-core CI runner mostly measures queueing behind one shard evaluation",
		GoMaxProc:  runtime.GOMAXPROCS(0),
		Pool:       pool,
		Baseline:   baseline,
		WithJob:    summarizeLatencies(during),
		P99RatioVs: 0,
		Job: jobsJobStats{
			Queries:      jobsBenchQueries,
			Shards:       final.Shards,
			ShardEvals:   final.ShardsDone,
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			ShardsPerSec: float64(final.ShardsDone) / wall.Seconds(),
			Tuples:       tuples,
		},
	}
	if snap.Baseline.P99Ms > 0 {
		snap.P99RatioVs = snap.WithJob.P99Ms / snap.Baseline.P99Ms
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	check(enc.Encode(snap))
	fmt.Print(buf.String())
}
