// Command kokobench regenerates the paper's tables and figures (DESIGN.md
// §2 maps each experiment id to its paper artifact).
//
//	kokobench -exp all                 run everything at default scale
//	kokobench -exp fig3                one experiment
//	kokobench -exp tab2 -scale 3       triple the default corpus sizes
//
// Output is plain text: one table per figure panel, in the same rows/series
// the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig3 fig4 fig5 nell fig6 fig7 fig8 tab1 tab2 odin ablation server all, or hotpath / plan / shard / jobs / ingest / wal / dist / stream / store (JSON snapshots, excluded from all)")
	scale := flag.Int("scale", 1, "corpus scale multiplier")
	seed := flag.Int64("seed", 1, "generator seed")
	iters := flag.Int("iters", 3, "timing iterations for -exp shard (best-of-N) and -exp jobs (probe count multiplier)")
	flag.Parse()

	run := func(id string) bool { return *exp == "all" || *exp == id }
	any := false
	if run("fig3") {
		any = true
		fig3(*seed, *scale)
	}
	if run("fig4") {
		any = true
		fig4(*seed, *scale)
	}
	if run("fig5") {
		any = true
		fig5(*seed)
	}
	if run("nell") {
		any = true
		nell(*seed)
	}
	if run("fig6") {
		any = true
		fig6(*seed, *scale)
	}
	if run("fig7") {
		any = true
		fig78("Figure 7 (HappyDB)", *seed, *scale, true)
	}
	if run("fig8") {
		any = true
		fig78("Figure 8 (Wikipedia)", *seed, *scale, false)
	}
	if run("tab1") {
		any = true
		tab1(*seed, *scale)
	}
	if run("tab2") {
		any = true
		tab2(*seed, *scale)
	}
	if run("odin") {
		any = true
		odin(*seed, *scale)
	}
	if run("ablation") {
		any = true
		ablation(*seed, *scale)
	}
	if run("server") {
		any = true
		serverLoad(*seed, *scale)
	}
	if *exp == "hotpath" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_engine.json snapshot) on stdout for redirection.
		any = true
		hotpath(*iters)
	}
	if *exp == "plan" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_plan.json snapshot) on stdout for redirection.
		any = true
		planBench(*iters)
	}
	if *exp == "shard" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_shard.json snapshot) on stdout for redirection.
		any = true
		shard(*iters)
	}
	if *exp == "jobs" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_jobs.json snapshot) on stdout for redirection.
		any = true
		jobsBench(*iters)
	}
	if *exp == "ingest" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_ingest.json snapshot) on stdout for redirection.
		any = true
		ingestBench(*iters)
	}
	if *exp == "wal" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_wal.json snapshot) on stdout for redirection.
		any = true
		walBench(*iters)
	}
	if *exp == "dist" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_dist.json snapshot) on stdout for redirection.
		any = true
		distBench(*iters)
	}
	if *exp == "stream" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_stream.json snapshot) on stdout for redirection.
		any = true
		streamBench(*iters)
	}
	if *exp == "store" {
		// Not part of -exp all: emits pure JSON (the committed
		// BENCH_store.json snapshot) on stdout for redirection.
		any = true
		storeBench(*iters)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "kokobench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func fig3(seed int64, scale int) {
	header("Figure 3 — extracting cafe names (Koko vs IKE vs CRFsuite)")
	bm := corpus.GenCafes(corpus.BaristaMagConfig(seed))
	res, err := experiments.RunCafeExtraction("Barista Magazine", bm)
	check(err)
	fmt.Print(experiments.FormatQuality(res))

	sp := corpus.SprudgeConfig(seed + 1)
	if scale < 1 {
		scale = 1
	}
	// Sprudge is large; scale=1 keeps the paper's full 1645 articles.
	res2, err := experiments.RunCafeExtraction("Sprudge", corpus.GenCafes(sp))
	check(err)
	fmt.Print(experiments.FormatQuality(res2))
}

func fig4(seed int64, scale int) {
	header("Figure 4 — extracting sports teams and facilities from tweets")
	w := corpus.GenWNUT(corpus.WNUTConfig{Tweets: 800 * scale, Seed: seed})
	for _, cat := range []string{"teams", "facilities"} {
		res, err := experiments.RunTweetExtraction(w, cat)
		check(err)
		fmt.Print(experiments.FormatQuality(res))
	}
}

func fig5(seed int64) {
	header("Figure 5 — Koko with/without descriptors (F1)")
	for _, ds := range []struct {
		name string
		cfg  corpus.CafeCorpusConfig
	}{
		{"Barista Magazine", corpus.BaristaMagConfig(seed)},
		{"Sprudge", corpus.SprudgeConfig(seed + 1)},
	} {
		lc := corpus.GenCafes(ds.cfg)
		with, err := experiments.RunCafeExtraction(ds.name, lc)
		check(err)
		without, err := experiments.RunKokoNoDescriptors(ds.name, lc)
		check(err)
		with.Koko.Name = "With descriptors"
		fmt.Print(experiments.FormatSeries(ds.name+" — F1", []experiments.Series{with.Koko, without},
			func(p experiments.PRF) float64 { return p.F1 }))
	}
}

func nell(seed int64) {
	header("§6.1 — NELL on the cafe corpora")
	for _, ds := range []struct {
		name string
		cfg  corpus.CafeCorpusConfig
	}{
		{"BaristaMag", corpus.BaristaMagConfig(seed)},
		{"Sprudge", corpus.SprudgeConfig(seed + 1)},
	} {
		lc := corpus.GenCafes(ds.cfg)
		res := experiments.RunNELL(ds.name, lc, seed+7)
		fmt.Printf("%-12s %s  (%d patterns promoted)\n", res.Dataset, res.PRF, res.Patterns)
	}
}

func fig6(seed int64, scale int) {
	header("Figure 6 — index construction time and size")
	sizes := []int{500, 1000, 2000, 5000}
	for i := range sizes {
		sizes[i] *= scale
	}
	fmt.Print(experiments.FormatBuild(experiments.RunIndexConstruction(sizes, seed)))
}

func fig78(title string, seed int64, scale int, happy bool) {
	header(title + " — index lookup time and effectiveness")
	var sizes []int
	pointsBySize := map[int][]experiments.LookupPoint{}
	if happy {
		for _, n := range []int{2000, 8000, 20000} {
			n *= scale
			sizes = append(sizes, n)
			c := corpus.GenHappyDB(n, seed)
			pointsBySize[n] = experiments.RunIndexLookup(c, n, seed+3)
		}
	} else {
		for _, n := range []int{1000, 4000, 10000} {
			n *= scale
			sizes = append(sizes, n)
			c, _ := corpus.GenWikipedia(n, seed)
			pointsBySize[n] = experiments.RunIndexLookup(c, n, seed+3)
		}
	}
	fmt.Print(experiments.FormatLookup(title, pointsBySize, sizes))
}

func tab1(seed int64, scale int) {
	header("Table 1 — GSP vs NOGSP (avg extract evaluation ms/sentence)")
	var points []experiments.GSPPoint
	hc := corpus.GenHappyDB(2000*scale, seed)
	points = append(points, experiments.RunGSPAblation(hc, "HappyDB", seed+1, 30, 400)...)
	wc, _ := corpus.GenWikipedia(1000*scale, seed)
	points = append(points, experiments.RunGSPAblation(wc, "Wikipedia", seed+2, 30, 400)...)
	fmt.Print(experiments.FormatGSP(points))
}

func tab2(seed int64, scale int) {
	header("Table 2 — Koko execution-time breakdown (Chocolate/Title/DateOfBirth)")
	sizes := []int{1000, 2000, 4000, 8000}
	for i := range sizes {
		sizes[i] *= scale
	}
	fmt.Print(experiments.FormatBreakdown(experiments.RunScaleBreakdown(sizes, seed)))
}

func odin(seed int64, scale int) {
	header("§6.3 — Odin comparison")
	points := experiments.RunOdinComparison(2000*scale, seed)
	fmt.Print(experiments.FormatOdin(points))
	for _, p := range points {
		fmt.Printf("%-14s Koko evaluated %d/%d sentences; Odin %d full passes\n",
			p.Query, p.KokoEvaluated, p.TotalSentences, p.Passes)
	}
}

func ablation(seed int64, scale int) {
	header("Ablation — DPLI with index families removed")
	c := corpus.GenHappyDB(3000*scale, seed)
	fmt.Print(experiments.FormatAblation(experiments.RunIndexAblation(c, seed+5)))
}

// hotpath writes the engine hot-path perf snapshot as JSON:
//
//	kokobench -exp hotpath > BENCH_engine.json
//
// The snapshot pairs the current engine's ns/op, B/op, allocs/op on the
// HappyDB extract workload with the committed pre-refactor baseline, so
// future PRs have a trajectory to beat.
func hotpath(iters int) {
	snap := experiments.RunHotPathBench()
	snap.Plan = experiments.RunPlanBench(iters).Points
	fmt.Print(experiments.FormatHotPath(snap))
}

// planBench writes the planner on/off comparison as JSON:
//
//	kokobench -exp plan > BENCH_plan.json
func planBench(iters int) {
	fmt.Print(experiments.FormatPlan(experiments.RunPlanBench(iters)))
}

// shard writes the sharded-execution scaling snapshot as JSON:
//
//	kokobench -exp shard > BENCH_shard.json
//
// The snapshot records wall-clock time and speedup of the HappyDB extract
// workload at K ∈ {1,2,4,8} doc-range shards.
func shard(iters int) {
	fmt.Print(experiments.FormatShardBench(experiments.RunShardBench(iters)))
}

// streamBench writes the streaming-execution snapshot as JSON:
//
//	kokobench -exp stream > BENCH_stream.json
//
// The snapshot compares first-tuple latency and peak heap growth of the
// streamed event drain against the materialized Collect at two result sizes.
func streamBench(iters int) {
	fmt.Print(experiments.FormatStreamBench(experiments.RunStreamBench(iters)))
}

// storeBench writes the storage-paging snapshot as JSON:
//
//	kokobench -exp store > BENCH_store.json
//
// The snapshot compares open latency, cold- and warm-cache query latency,
// and live-heap residency of the mmap block store against the heap-resident
// row store at one fixed corpus.
func storeBench(iters int) {
	fmt.Print(experiments.FormatStoreBench(experiments.RunStoreBench(iters)))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kokobench:", err)
		os.Exit(1)
	}
}
