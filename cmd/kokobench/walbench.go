package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/koko/wal"
	"repro/internal/server"
	"repro/koko"
)

// walBench measures what durability costs on the ingest path: sustained
// single-writer document ingestion (NLP parse + delta append + WAL append +
// seal) under each WAL fsync policy, next to a memory-only baseline run in
// the same process. The interesting number is batch_vs_memory — group
// commit is the default policy, and the snapshot records how close it stays
// to the no-WAL rate.
//
//	kokobench -exp wal -iters 3 > BENCH_wal.json

const (
	walBenchSents  = 1500
	walBenchShards = 4
)

type walPolicyStats struct {
	Policy     string  `json:"policy"`
	Docs       int     `json:"docs"`
	WallMs     float64 `json:"wall_ms"`
	DocsPerSec float64 `json:"docs_per_sec"`
	WALBytes   int64   `json:"wal_bytes"`
	WALAppends uint64  `json:"wal_appends"`
}

type walSnapshot struct {
	Workload      string           `json:"workload"`
	Note          string           `json:"note"`
	GoMaxProc     int              `json:"gomaxprocs"`
	Policies      []walPolicyStats `json:"policies"`
	BatchVsMemory float64          `json:"batch_vs_memory"`
}

// walBenchRun ingests nDocs synthetic documents into one corpus and reports
// throughput. dataDir == "" runs the memory-only baseline.
func walBenchRun(policyName, dataDir string, sync wal.SyncPolicy, docs []string) walPolicyStats {
	svc := server.NewService(server.Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		CacheSize:     -1,
		MaxDeltaDocs:  -1, // no auto-compaction: measure the pure ingest path
		DataDir:       dataDir,
		WALSync:       sync,
	})
	c := koko.WrapCorpus(corpus.GenHappyDB(walBenchSents, experiments.HotPathCorpusSeed))
	check(svc.Registry().Register("happy", koko.NewShardedEngine(c, walBenchShards, nil)))

	t0 := time.Now()
	for i, txt := range docs {
		if _, _, _, err := svc.Ingest("happy", fmt.Sprintf("wal-%d.txt", i), txt); err != nil {
			check(err)
		}
	}
	wall := time.Since(t0)
	m := svc.Metrics()
	svc.Close()
	return walPolicyStats{
		Policy:     policyName,
		Docs:       len(docs),
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
		DocsPerSec: float64(len(docs)) / wall.Seconds(),
		WALBytes:   m.WALBytes,
		WALAppends: m.WALAppends,
	}
}

func walBench(iters int) {
	if iters < 1 {
		iters = 1
	}
	nDocs := 120 * iters
	rng := rand.New(rand.NewSource(experiments.HotPathCorpusSeed))
	docs := make([]string, nDocs)
	for i := range docs {
		docs[i] = ingestBenchDoc(rng)
	}

	policies := []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"none", wal.SyncNone},
		{"batch", wal.SyncBatch},
		{"always", wal.SyncAlways},
	}
	snap := walSnapshot{
		Workload: fmt.Sprintf("GenHappyDB(%d, %d) in %d shards; ingest = %d synthetic docs via the NLP pipeline, one writer, auto-compaction off",
			walBenchSents, experiments.HotPathCorpusSeed, walBenchShards, nDocs),
		Note: "refresh with `go run ./cmd/kokobench -exp wal -iters 3 > BENCH_wal.json`; " +
			"memory is the no-WAL baseline; batch_vs_memory = batch docs_per_sec / memory docs_per_sec " +
			"(group commit is the default -wal-sync policy)",
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	snap.Policies = append(snap.Policies, walBenchRun("memory", "", wal.SyncNone, docs))
	for _, p := range policies {
		dir, err := os.MkdirTemp("", "kokobench-wal-")
		check(err)
		snap.Policies = append(snap.Policies, walBenchRun(p.name, dir, p.sync, docs))
		os.RemoveAll(dir)
	}
	var memory, batch float64
	for _, p := range snap.Policies {
		switch p.Policy {
		case "memory":
			memory = p.DocsPerSec
		case "batch":
			batch = p.DocsPerSec
		}
	}
	if memory > 0 {
		snap.BatchVsMemory = batch / memory
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	check(enc.Encode(snap))
	fmt.Print(buf.String())
}
