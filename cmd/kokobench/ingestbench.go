package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/koko"
)

// ingestBench measures the split the mutable-corpus design exists for:
// sustained single-document ingestion (delta appends + per-document seals +
// auto-compactions) running concurrently with interactive queries. The
// snapshot records ingest throughput (docs/sec) next to interactive tail
// latency with and without the ingest storm — the number that shows
// snapshot reads are actually never blocked by writers.
//
//	kokobench -exp ingest -iters 3 > BENCH_ingest.json

const (
	ingestBenchSents    = 1500
	ingestBenchShards   = 4
	ingestBenchMaxDelta = 64 // low threshold so auto-compaction is exercised
)

// ingestBenchDoc renders a deterministic synthetic "happy moment" document
// for the text-ingestion path (NLP parse included in the measured cost).
func ingestBenchDoc(rng *rand.Rand) string {
	foods := []string{"cheesecake", "pie", "ice cream", "ramen", "cappuccino", "bagel"}
	moods := []string{"delicious", "fresh", "warm", "perfect"}
	places := []string{"a grocery store", "the corner cafe", "the farmers market"}
	n := 2 + rng.Intn(3)
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "I ate a %s %s that I bought at %s. ",
			moods[rng.Intn(len(moods))], foods[rng.Intn(len(foods))], places[rng.Intn(len(places))])
	}
	return b.String()
}

type ingestStats struct {
	Docs        int     `json:"docs"`
	WallMs      float64 `json:"wall_ms"`
	DocsPerSec  float64 `json:"docs_per_sec"`
	Compactions int64   `json:"compactions"`
	FinalDocs   int     `json:"final_docs"`
	FinalDelta  int     `json:"final_delta_docs"`
}

type ingestSnapshot struct {
	Workload   string        `json:"workload"`
	Note       string        `json:"note"`
	GoMaxProc  int           `json:"gomaxprocs"`
	Pool       int           `json:"pool"`
	MaxDelta   int           `json:"max_delta_docs"`
	Baseline   jobsLatencies `json:"interactive_baseline"`
	WithIngest jobsLatencies `json:"interactive_with_ingest"`
	Ingest     ingestStats   `json:"ingest"`
	P99RatioVs float64       `json:"p99_with_ingest_vs_baseline"`
}

func ingestBench(iters int) {
	if iters < 1 {
		iters = 1
	}
	pool := runtime.GOMAXPROCS(0)
	svc := server.NewService(server.Config{MaxConcurrent: pool, CacheSize: -1, MaxDeltaDocs: ingestBenchMaxDelta})
	c := koko.WrapCorpus(corpus.GenHappyDB(ingestBenchSents, experiments.HotPathCorpusSeed))
	check(svc.Registry().Register("happy", koko.NewShardedEngine(c, ingestBenchShards, nil)))

	interactive := server.QueryRequest{Corpus: "happy", Query: jobsBenchInteractive, NoCache: true}
	probe := func(n int) []float64 {
		ms := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if _, err := svc.Query(context.Background(), interactive); err != nil {
				check(err)
			}
			ms = append(ms, float64(time.Since(t0).Nanoseconds())/1e6)
		}
		return ms
	}

	// Warm the engines, then take the no-ingest baseline.
	probe(3)
	baseline := summarizeLatencies(probe(50 * iters))

	// Sustained ingestion: one writer appending documents flat out (each
	// ingest parses, appends to the delta, and seals a new generation;
	// every ingestBenchMaxDelta docs a background compaction folds the
	// delta into re-partitioned base shards). Interactive probes run
	// against whatever snapshot is current until the writer finishes.
	nDocs := 120 * iters
	rng := rand.New(rand.NewSource(experiments.HotPathCorpusSeed))
	docs := make([]string, nDocs)
	for i := range docs {
		docs[i] = ingestBenchDoc(rng)
	}
	done := make(chan struct{})
	t0 := time.Now()
	go func() {
		defer close(done)
		for i, txt := range docs {
			if _, _, _, err := svc.Ingest("happy", fmt.Sprintf("ingest-%d.txt", i), txt); err != nil {
				check(err)
			}
		}
	}()
	var during []float64
	for {
		tq := time.Now()
		if _, err := svc.Query(context.Background(), interactive); err != nil {
			check(err)
		}
		during = append(during, float64(time.Since(tq).Nanoseconds())/1e6)
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	wall := time.Since(t0)

	// Quiesce: fold the remaining delta and report the final shape.
	info, _, err := svc.Compact("happy")
	check(err)
	m := svc.Metrics()

	snap := ingestSnapshot{
		Workload: fmt.Sprintf("GenHappyDB(%d, %d) in %d shards; ingest = %d synthetic docs via the NLP pipeline; interactive probe = light dobj-subtree extract",
			ingestBenchSents, experiments.HotPathCorpusSeed, ingestBenchShards, nDocs),
		Note: "refresh with `go run ./cmd/kokobench -exp ingest -iters 3 > BENCH_ingest.json`; " +
			"interactive_with_ingest probes run while a writer ingests flat out (per-doc delta seal, auto-compaction every " +
			fmt.Sprintf("%d", ingestBenchMaxDelta) + " docs); docs_per_sec includes NLP parsing and sealing",
		GoMaxProc:  runtime.GOMAXPROCS(0),
		Pool:       pool,
		MaxDelta:   ingestBenchMaxDelta,
		Baseline:   baseline,
		WithIngest: summarizeLatencies(during),
		Ingest: ingestStats{
			Docs:        nDocs,
			WallMs:      float64(wall.Nanoseconds()) / 1e6,
			DocsPerSec:  float64(nDocs) / wall.Seconds(),
			Compactions: m.CompactionsTotal,
			FinalDocs:   info.Documents,
			FinalDelta:  info.DeltaDocs,
		},
	}
	if snap.Baseline.P99Ms > 0 {
		snap.P99RatioVs = snap.WithIngest.P99Ms / snap.Baseline.P99Ms
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	check(enc.Encode(snap))
	fmt.Print(buf.String())
}
