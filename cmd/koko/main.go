// Command koko is the CLI front end of the KOKO engine: build a persisted
// index over text files, then run KOKO queries against it.
//
//	koko index -out corpus.koko doc1.txt doc2.txt ...
//	koko query -db corpus.koko -q 'extract x:Entity from f if () ...'
//	koko query -db corpus.koko -f query.koko
//	koko stats -db corpus.koko
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/server"
	"repro/koko"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "index":
		err = cmdIndex(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "koko:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  koko index -out <file.koko> <doc.txt>...   parse and index documents
  koko query -db <file.koko> (-q <query> | -f <query-file>)
  koko stats -db <file.koko>                 print index statistics`)
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	out := fs.String("out", "corpus.koko", "output index file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no input documents")
	}
	var names, texts []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		names = append(names, filepath.Base(f))
		texts = append(texts, string(data))
	}
	eng := koko.NewEngine(koko.NewCorpus(names, texts), nil)
	if err := eng.Save(*out); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Printf("indexed %d documents -> %s\n", len(files), *out)
	fmt.Printf("words=%d entities=%d pl-nodes=%d pos-nodes=%d pl-compression=%.4f\n",
		st.Words, st.Entities, st.PLNodes, st.POSNodes, st.PLCompression)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	db := fs.String("db", "corpus.koko", "index file written by 'koko index'")
	q := fs.String("q", "", "KOKO query text")
	qf := fs.String("f", "", "file containing the KOKO query")
	explain := fs.Bool("explain", false, "print per-condition evidence for every tuple")
	workers := fs.Int("workers", 1, "parallel document-evaluation workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src := *q
	if src == "" && *qf != "" {
		data, err := os.ReadFile(*qf)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if src == "" {
		return fmt.Errorf("provide a query with -q or -f")
	}
	// One-shot CLI runs share the kokod registry/service path (no result
	// cache: every invocation is fresh).
	svc := server.NewService(server.Config{MaxConcurrent: 1, CacheSize: -1})
	if err := svc.Registry().LoadFile("", *db); err != nil {
		return err
	}
	res, err := svc.Query(context.Background(), server.QueryRequest{
		Corpus:  server.DefaultName(*db),
		Query:   src,
		Explain: *explain,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	for _, t := range res.Tuples {
		fmt.Printf("sid=%d\t%v", t.SentenceID, t.Values)
		if len(t.Scores) > 0 {
			fmt.Printf("\t%v", t.Scores)
		}
		fmt.Println()
		for _, ev := range t.Evidence {
			fmt.Printf("    %-40s weight=%.2f conf=%.3f -> %.3f\n",
				ev.Condition, ev.Weight, ev.Confidence, ev.Contribution)
		}
	}
	fmt.Printf("-- %d tuples, %d candidate sentences, %d matched, %.3fms\n",
		len(res.Tuples), res.Candidates, res.Matched, res.Phases.Total)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fs.String("db", "corpus.koko", "index file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := server.NewRegistry(nil)
	if err := reg.LoadFile("", *db); err != nil {
		return err
	}
	name := server.DefaultName(*db)
	info, err := reg.Info(name)
	if err != nil {
		return err
	}
	st, err := reg.Stats(name)
	if err != nil {
		return err
	}
	fmt.Printf("corpus=%s documents=%d sentences=%d\n", info.Name, info.Documents, info.Sentences)
	fmt.Printf("words=%d entities=%d pl-nodes=%d pos-nodes=%d\n", st.Words, st.Entities, st.PLNodes, st.POSNodes)
	fmt.Printf("pl-compression=%.4f pos-compression=%.4f\n", st.PLCompression, st.POSCompression)
	return nil
}
