// Command kokod serves KOKO queries over HTTP: a multi-corpus registry of
// persisted .koko stores (and optional built-in demo corpora) behind a
// concurrent query service with a normalized-query result cache.
//
//	kokod -load cafes=cafes.koko -load wiki=wiki.koko
//	kokod -dir /data/corpora           # registers every *.koko in the dir
//	kokod -demo                        # two small in-memory demo corpora
//	kokod -demo -shards 4              # partition each corpus into 4 doc-range
//	                                   # shards; queries fan out and merge
//
//	curl -s localhost:7333/v1/corpora
//	curl -s localhost:7333/v1/query -d '{
//	  "corpus": "demo-cafes",
//	  "query": "extract x:Entity from \"blogs\" if () satisfying x (str(x) contains \"Cafe\" {1.0}) with threshold 0.5"
//	}'
//
// Endpoints: POST /v1/query (buffered, or NDJSON streaming with ?stream=1 /
// Accept: application/x-ndjson), POST /v1/validate, GET /v1/corpora,
// GET /v1/corpora/{name}/stats, POST /v1/corpora/{name}/reload,
// POST /v1/corpora/{name}/documents (live ingestion),
// POST /v1/corpora/{name}/compact, DELETE /v1/corpora/{name},
// POST/GET /v1/jobs, GET /v1/jobs/{id}[/results], DELETE /v1/jobs/{id},
// GET /v1/healthz, GET /v1/metrics.
//
// Async jobs: POST /v1/jobs with {"corpus": ..., "queries": [...]} runs a
// query batch shard-at-a-time on the same worker pool as interactive
// queries; poll GET /v1/jobs/{id}, fetch (partial) results at
// GET /v1/jobs/{id}/results, cancel with DELETE. -max-jobs bounds active
// jobs, -job-results-ttl how long finished ones stay fetchable.
//
// Mutable corpora: POST /v1/corpora/{name}/documents with {"name": ...,
// "text": ...} upserts one document into the corpus's delta index and seals
// a new generation — the document is queryable immediately and queries are
// never blocked by ingestion (re-using a document name replaces it).
// DELETE /v1/corpora/{name}/documents/{doc} tombstones a document by name.
// The delta folds into the base shards when it reaches -max-delta-docs,
// every -compact-interval, or on an explicit
// POST /v1/corpora/{name}/compact.
//
// Durability: with -data-dir set, every corpus writes ingests and deletes
// through a per-corpus write-ahead log under <data-dir>/<name>/ before
// acknowledging them. After a crash or kill -9, restarting with the same
// -data-dir replays each corpus's WAL and serves exactly the acknowledged
// state; corpora created purely over the API come back too. -wal-sync
// picks the fsync policy (none, batch group-commit, always) and
// -wal-max-bytes bounds the log (a background compaction folds it into the
// shard files past that size).
//
// Distributed execution: -role coordinator -worker host:port -worker ...
// discovers the workers' corpora, replicates each shard across -replicas
// workers, and serves the full query API locally with every shard evaluated
// remotely (POST /v1/internal/shard-eval on the workers). Failed attempts
// are retried against replicas with exponential backoff; straggling shards
// are hedged after -hedge-after (0 = adaptive from observed p95 latency);
// repeatedly failing workers trip a per-node circuit breaker and are pinged
// every -health-interval until they recover. ?partial=ok on /v1/query opts
// into a degraded response when every replica of some shard is down.
// Workers are plain kokod processes (-role worker is documentation only).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/koko/wal"
	"repro/internal/server"
)

// loadFlags accumulates repeated -load values ("name=path" or bare "path").
type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

// ttlFlags accumulates repeated -cache-ttl values: a bare duration sets the
// default TTL for every corpus, "name=duration" overrides it per corpus
// ("name=0" disables expiry for that corpus).
type ttlFlags struct {
	def time.Duration
	per map[string]time.Duration
}

func (t *ttlFlags) String() string {
	if t == nil || (t.def == 0 && len(t.per) == 0) {
		return ""
	}
	parts := []string{}
	if t.def != 0 {
		parts = append(parts, t.def.String())
	}
	for name, d := range t.per {
		parts = append(parts, name+"="+d.String())
	}
	return strings.Join(parts, ",")
}

func (t *ttlFlags) Set(v string) error {
	if i := strings.IndexByte(v, '='); i >= 0 {
		d, err := time.ParseDuration(v[i+1:])
		if err != nil {
			return fmt.Errorf("cache-ttl %q: %w", v, err)
		}
		if t.per == nil {
			t.per = map[string]time.Duration{}
		}
		t.per[v[:i]] = d
		return nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("cache-ttl %q: %w", v, err)
	}
	t.def = d
	return nil
}

func main() {
	var loads loadFlags
	addr := flag.String("addr", ":7333", "listen address")
	dir := flag.String("dir", "", "directory to scan for *.koko stores")
	demo := flag.Bool("demo", false, "register two built-in in-memory demo corpora")
	pool := flag.Int("pool", 0, "max queries evaluating concurrently (0 = 2×GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = default 256, negative = disabled)")
	cacheTuples := flag.Int("cache-tuples", 0, "result-cache tuple budget across all entries (0 = default 100000, negative = unbounded)")
	workers := flag.Int("workers", 1, "default per-query document-evaluation workers")
	shards := flag.Int("shards", 1, "doc-range shards per loaded corpus; queries fan out across shards (sharded manifests keep their on-disk count)")
	shardPar := flag.Int("shard-parallel", 0, "per-query shard fan-out bound (0 = auto-scale inversely with -pool, negative = min(shards, GOMAXPROCS))")
	maxJobs := flag.Int("max-jobs", 0, "max async jobs pending or running at once (0 = default 16)")
	jobTTL := flag.Duration("job-results-ttl", 0, "how long finished jobs stay fetchable (0 = default 15m, negative = until deleted)")
	jobTuples := flag.Int("job-retained-tuples", 0, "total tuples retained across finished jobs; oldest evicted beyond it (0 = default 200000, negative = unbounded)")
	maxDelta := flag.Int("max-delta-docs", 0, "ingested docs a corpus's delta may hold before auto-compaction (0 = default 256, negative = no auto-compaction)")
	dataDir := flag.String("data-dir", "", "durable corpus state directory: per-corpus WAL + shard store, replayed on restart (empty = memory-only)")
	walSync := flag.String("wal-sync", "batch", "WAL fsync policy with -data-dir: none, batch (group commit), or always")
	walMaxBytes := flag.Int64("wal-max-bytes", 64<<20, "WAL size that triggers a background compaction with -data-dir (0 = no size trigger)")
	compactEvery := flag.Duration("compact-interval", 0, "background compaction loop period; folds every pending delta into its base shards (0 = disabled)")
	cacheMinCost := flag.Duration("cache-min-cost", 0, "cost-aware cache admission: only cache results whose evaluation took at least this long (0 = cache everything)")
	storeCache := flag.Int64("store-cache-bytes", 0, "decoded-block cache budget for mmap'd block stores, in bytes (0 = default 256MiB, negative = unbounded)")
	plan := flag.String("plan", "on", "statistics-free query planner: on (selectivity-ordered condition evaluation) or off (written order; the differential baseline)")
	role := flag.String("role", "standalone", "node role: standalone, worker (serves shard evaluations; same as standalone), or coordinator (fans queries out to -worker nodes)")
	var workerAddrs loadFlags
	flag.Var(&workerAddrs, "worker", "worker node address for -role coordinator, as host:port or URL (repeatable or comma-separated)")
	replicas := flag.Int("replicas", 2, "workers each shard is replicated across with -role coordinator (clamped to the worker count)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "per-attempt deadline for one remote shard evaluation (0 = default 2s)")
	retries := flag.Int("retries", 0, "total attempts per shard against distinct replicas — first try plus retries (0 = default 3)")
	hedgeAfter := flag.Duration("hedge-after", 0, "launch a hedged shard attempt on another replica after this delay (0 = adaptive from observed p95 latency, negative = no hedging)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "worker health-check ping period with -role coordinator (0 = no active checks)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget: in-flight requests and running jobs get this long to finish")
	var cacheTTL ttlFlags
	flag.Var(&cacheTTL, "cache-ttl", "result-cache entry TTL, as a duration or name=duration per corpus (repeatable; entries expire lazily on lookup)")
	flag.Var(&loads, "load", "corpus to serve, as name=path.koko or path.koko (repeatable)")
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatalf("kokod: %v", err)
	}
	if *plan != "on" && *plan != "off" {
		log.Fatalf("kokod: -plan must be on or off, got %q", *plan)
	}
	svc := server.NewService(server.Config{
		MaxConcurrent:     *pool,
		CacheSize:         *cache,
		CacheMaxTuples:    *cacheTuples,
		DefaultWorkers:    *workers,
		Shards:            *shards,
		ShardParallel:     *shardPar,
		MaxJobs:           *maxJobs,
		JobResultsTTL:     *jobTTL,
		JobRetainedTuples: *jobTuples,
		CacheTTL:          cacheTTL.def,
		CacheTTLPerCorpus: cacheTTL.per,
		CacheMinCost:      *cacheMinCost,
		DisablePlan:       *plan == "off",
		MaxDeltaDocs:      *maxDelta,
		DataDir:           *dataDir,
		WALSync:           syncPolicy,
		WALMaxBytes:       *walMaxBytes,
		StoreCacheBytes:   *storeCache,
	})
	reg := svc.Registry()

	for _, spec := range loads {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		if err := reg.LoadFile(name, path); err != nil {
			log.Fatalf("kokod: %v", err)
		}
	}
	if *dir != "" {
		paths, err := filepath.Glob(filepath.Join(*dir, "*.koko"))
		if err != nil {
			log.Fatalf("kokod: scan %s: %v", *dir, err)
		}
		for _, p := range paths {
			if err := reg.LoadFile("", p); err != nil {
				log.Fatalf("kokod: %v", err)
			}
		}
	}
	if *demo {
		if err := server.RegisterDemoCorpora(reg, *shards); err != nil {
			log.Fatalf("kokod: %v", err)
		}
	}
	if *dataDir != "" {
		// Recover corpora created over the API in a previous run (the
		// explicit -load/-dir/-demo registrations above already replayed
		// their own WALs).
		recovered, err := reg.LoadDurable()
		if err != nil {
			log.Fatalf("kokod: %v", err)
		}
		for _, name := range recovered {
			log.Printf("kokod: recovered durable corpus %q from %s", name, *dataDir)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *role {
	case "standalone", "worker":
		if len(workerAddrs) > 0 {
			log.Fatalf("kokod: -worker requires -role coordinator")
		}
	case "coordinator":
		var addrs []string
		for _, w := range workerAddrs {
			for _, a := range strings.Split(w, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
		}
		if len(addrs) == 0 {
			log.Fatalf("kokod: -role coordinator requires at least one -worker")
		}
		names, err := svc.ConnectWorkers(ctx, server.RemoteConfig{
			Workers:        addrs,
			Replicas:       *replicas,
			AttemptTimeout: *attemptTimeout,
			MaxAttempts:    *retries,
			HedgeAfter:     *hedgeAfter,
			HealthInterval: *healthInterval,
		})
		if err != nil {
			log.Fatalf("kokod: connect workers: %v", err)
		}
		log.Printf("kokod: coordinating %d corpora across %d workers (replicas=%d): %s",
			len(names), len(addrs), *replicas, strings.Join(names, ", "))
	default:
		log.Fatalf("kokod: unknown -role %q (want standalone, worker, or coordinator)", *role)
	}

	if reg.Len() == 0 {
		fmt.Fprintln(os.Stderr, "kokod: no corpora registered; use -load, -dir, -demo, a -data-dir with durable state, or -role coordinator with -worker")
		os.Exit(2)
	}
	for _, info := range reg.List() {
		src := info.Source
		if src == "" {
			src = "(in-memory)"
		}
		if info.Durable {
			src += " (durable)"
		}
		log.Printf("kokod: corpus %q gen=%d shards=%d docs=%d sentences=%d %s",
			info.Name, info.Generation, info.Shards, info.Documents, info.Sentences, src)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Bound how long a client may dawdle before its connection costs us
		// anything: slow or stalled headers/bodies time out, idle keep-alive
		// connections are reaped. No WriteTimeout — NDJSON streams and long
		// queries legitimately write for longer than any fixed bound.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if *compactEvery > 0 {
		log.Printf("kokod: background compaction every %s", *compactEvery)
		go svc.CompactLoop(ctx, *compactEvery)
	}
	log.Printf("kokod: serving %d corpora on %s", reg.Len(), *addr)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("kokod: %v", err)
		}
	case <-ctx.Done():
		// Graceful shutdown, in dependency order and all inside one drain
		// budget: stop accepting connections and wait for in-flight requests
		// (streams included), then let running jobs finish, then close WAL
		// handles so batched writes hit disk. Only after the budget expires
		// are stragglers cut off.
		log.Printf("kokod: shutting down (drain budget %s)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("kokod: shutdown: %v", err)
		}
		if err := svc.Jobs().Drain(shutdownCtx); err != nil {
			log.Printf("kokod: job drain: %v (cancelling remaining jobs)", err)
		}
		cancel()
	}
	svc.Close()
}
