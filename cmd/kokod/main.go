// Command kokod serves KOKO queries over HTTP: a multi-corpus registry of
// persisted .koko stores (and optional built-in demo corpora) behind a
// concurrent query service with a normalized-query result cache.
//
//	kokod -load cafes=cafes.koko -load wiki=wiki.koko
//	kokod -dir /data/corpora           # registers every *.koko in the dir
//	kokod -demo                        # two small in-memory demo corpora
//	kokod -demo -shards 4              # partition each corpus into 4 doc-range
//	                                   # shards; queries fan out and merge
//
//	curl -s localhost:7333/v1/corpora
//	curl -s localhost:7333/v1/query -d '{
//	  "corpus": "demo-cafes",
//	  "query": "extract x:Entity from \"blogs\" if () satisfying x (str(x) contains \"Cafe\" {1.0}) with threshold 0.5"
//	}'
//
// Endpoints: POST /v1/query, POST /v1/validate, GET /v1/corpora,
// GET /v1/corpora/{name}/stats, POST /v1/corpora/{name}/reload,
// GET /v1/healthz, GET /v1/metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/koko"
)

// loadFlags accumulates repeated -load values ("name=path" or bare "path").
type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var loads loadFlags
	addr := flag.String("addr", ":7333", "listen address")
	dir := flag.String("dir", "", "directory to scan for *.koko stores")
	demo := flag.Bool("demo", false, "register two built-in in-memory demo corpora")
	pool := flag.Int("pool", 0, "max queries evaluating concurrently (0 = 2×GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = default 256, negative = disabled)")
	cacheTuples := flag.Int("cache-tuples", 0, "result-cache tuple budget across all entries (0 = default 100000, negative = unbounded)")
	workers := flag.Int("workers", 1, "default per-query document-evaluation workers")
	shards := flag.Int("shards", 1, "doc-range shards per loaded corpus; queries fan out across shards (sharded manifests keep their on-disk count)")
	shardPar := flag.Int("shard-parallel", 0, "per-query shard fan-out bound (0 = auto-scale inversely with -pool, negative = min(shards, GOMAXPROCS))")
	flag.Var(&loads, "load", "corpus to serve, as name=path.koko or path.koko (repeatable)")
	flag.Parse()

	svc := server.NewService(server.Config{
		MaxConcurrent:  *pool,
		CacheSize:      *cache,
		CacheMaxTuples: *cacheTuples,
		DefaultWorkers: *workers,
		Shards:         *shards,
		ShardParallel:  *shardPar,
	})
	reg := svc.Registry()

	for _, spec := range loads {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		if err := reg.LoadFile(name, path); err != nil {
			log.Fatalf("kokod: %v", err)
		}
	}
	if *dir != "" {
		paths, err := filepath.Glob(filepath.Join(*dir, "*.koko"))
		if err != nil {
			log.Fatalf("kokod: scan %s: %v", *dir, err)
		}
		for _, p := range paths {
			if err := reg.LoadFile("", p); err != nil {
				log.Fatalf("kokod: %v", err)
			}
		}
	}
	if *demo {
		registerDemoCorpora(reg, *shards)
	}
	if reg.Len() == 0 {
		fmt.Fprintln(os.Stderr, "kokod: no corpora registered; use -load, -dir, or -demo")
		os.Exit(2)
	}
	for _, info := range reg.List() {
		src := info.Source
		if src == "" {
			src = "(in-memory)"
		}
		log.Printf("kokod: corpus %q gen=%d shards=%d docs=%d sentences=%d %s",
			info.Name, info.Generation, info.Shards, info.Documents, info.Sentences, src)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("kokod: serving %d corpora on %s", reg.Len(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("kokod: %v", err)
	}
}

// registerDemoCorpora installs two small in-memory corpora so the server is
// queryable out of the box (and exercises the multi-corpus path). shards > 1
// partitions them so the fan-out path is also demoable without a store file.
func registerDemoCorpora(reg *server.Registry, shards int) {
	build := func(c *koko.Corpus) koko.Querier {
		if shards > 1 {
			return koko.NewShardedEngine(c, shards, nil)
		}
		return koko.NewEngine(c, nil)
	}
	cafes := build(koko.NewCorpus(
		[]string{"seattle.txt", "portland.txt"},
		[]string{
			"Cafe Vita serves smooth espresso daily. Cafe Juanita hired a champion barista. " +
				"The neighborhood bakery sells fresh bread.",
			"Cafe Umbria opened a second location. The baristas at Cafe Umbria won a latte art championship.",
		}))
	reg.Register("demo-cafes", cafes)

	food := build(koko.NewCorpus(
		[]string{"reviews.txt"},
		[]string{
			"I ate a chocolate ice cream, which was delicious, and also ate a pie. " +
				"Anna ate some delicious cheesecake that she bought at a grocery store.",
		}))
	reg.Register("demo-food", food)
}
